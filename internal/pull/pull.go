// Package pull implements the synchronous pulling model of Section 5 and
// the randomised, communication-efficient counters of Theorem 4 and
// Corollaries 4–5.
//
// Model: in every round each processor contacts a subset of nodes by
// pulling their state; contacted nodes respond with their state as of
// the beginning of the round; faulty nodes may respond with arbitrary,
// per-puller-different states. The message/bit complexity of an
// algorithm is the maximum number of messages/bits pulled by a
// non-faulty node in a round — the "energy budget" of the circuit
// motivation. Pulls within a round may be issued adaptively (the model
// fixes only that all responses reflect start-of-round states); the
// sampled counter uses this for the single king pull whose identity
// depends on the voted round counter R.
package pull

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/synchcount/synchcount/internal/adversary"
	"github.com/synchcount/synchcount/internal/alg"
	"github.com/synchcount/synchcount/internal/sim"
)

// Puller is the per-round communication capability handed to a node: it
// returns the start-of-round state of the target (or adversarial
// garbage when the target is faulty). Every call is one pull and is
// charged to the calling node.
type Puller func(target int) alg.State

// Algorithm is a counting algorithm in the pulling model.
type Algorithm interface {
	// N, F, C and StateSpace mirror alg.Algorithm.
	N() int
	F() int
	C() int
	StateSpace() uint64
	// Step runs one round for the node: it may pull any targets (cost:
	// one message per call) and must return the next state.
	// Deterministic algorithms (alg.Deterministic) ignore rng, which may
	// be nil for them.
	Step(node int, own alg.State, pull Puller, rng *rand.Rand) alg.State
	// Output maps a state to the counter value.
	Output(node int, s alg.State) int
}

// Config describes one pulling-model run.
type Config struct {
	// Alg is the pulling-model algorithm under test.
	Alg Algorithm
	// Faulty lists Byzantine node indices.
	Faulty []int
	// Adv supplies faulty responses; adversary.View carries the
	// omniscient snapshot exactly as in the broadcast simulator.
	// Defaults to adversary.Equivocate.
	Adv adversary.Adversary
	// Seed drives all randomness.
	Seed int64
	// MaxRounds bounds the run. Required.
	MaxRounds uint64
	// Window is the confirmation window (default sim.DefaultWindowFor).
	Window uint64
	// Init optionally fixes initial states.
	Init []alg.State
	// StopEarly stops once stabilisation is confirmed.
	StopEarly bool
	// OnRound observes (round, states, outputs) like sim.Config.OnRound.
	OnRound func(round uint64, states []alg.State, outputs []int)
	// Abort, when non-nil, is polled once per round; the run stops with
	// ErrAborted as soon as it returns true (see sim.Config.Abort).
	Abort func() bool
}

// ErrAborted is returned by Run/RunFull when Config.Abort requested an
// early stop.
var ErrAborted = errors.New("pull: run aborted")

// Result reports a pulling-model run.
type Result struct {
	// Stabilised, StabilisationTime, RoundsRun and Violations are as in
	// sim.Result.
	Stabilised        bool
	StabilisationTime uint64
	RoundsRun         uint64
	Violations        uint64
	// MaxPulls is the maximum number of pulls any correct node issued in
	// any round — the paper's per-node message complexity.
	MaxPulls uint64
	// MeanPulls is the average pulls per correct node per round.
	MeanPulls float64
	// MaxBits is MaxPulls times the per-state bit size.
	MaxBits uint64
}

// Run executes the configured pulling-model simulation with early stop.
func Run(cfg Config) (Result, error) {
	cfg.StopEarly = true
	return run(cfg)
}

// RunFull executes for exactly MaxRounds (for violation counting).
func RunFull(cfg Config) (Result, error) {
	cfg.StopEarly = false
	return run(cfg)
}

// run dispatches to the sparse batch kernel when the algorithm provides
// one, and to the retained scalar reference loop otherwise. The
// differential suite holds the two paths bit-identical.
func run(cfg Config) (Result, error) {
	if bs, ok := cfg.Alg.(BatchStepper); ok {
		return runMode(cfg, bs)
	}
	return runMode(cfg, nil)
}

// runReference forces the scalar reference loop regardless of batch
// support; the differential suite and the BenchmarkPull_* pairs measure
// the kernel against it.
func runReference(cfg Config) (Result, error) { return runMode(cfg, nil) }

// deterministic reports whether a pull algorithm declares itself
// deterministic (never consults the node rng); such runs skip per-node
// seeding entirely.
func deterministic(a Algorithm) bool {
	d, ok := a.(alg.Deterministic)
	return ok && d.Deterministic()
}

func runMode(cfg Config, batch BatchStepper) (Result, error) {
	a := cfg.Alg
	if a == nil {
		return Result{}, errors.New("pull: nil algorithm")
	}
	if cfg.MaxRounds == 0 {
		return Result{}, errors.New("pull: MaxRounds must be positive")
	}
	n := a.N()
	c := a.C()

	// Observers may retain the states/outputs slices after the run, so
	// those runs bypass the pool (mirroring the broadcast simulator).
	var sc *runScratch
	if cfg.OnRound != nil {
		sc = newScratch(n)
	} else {
		sc = getScratch(n)
		defer putScratch(sc)
	}
	faulty := sc.faulty
	correct := uint64(n)
	for _, i := range cfg.Faulty {
		if i < 0 || i >= n {
			return Result{}, fmt.Errorf("pull: faulty node %d out of range [0,%d)", i, n)
		}
		if faulty[i] {
			return Result{}, fmt.Errorf("pull: faulty node %d listed twice", i)
		}
		faulty[i] = true
		correct--
	}
	adv := cfg.Adv
	if adv == nil {
		adv = adversary.Equivocate{}
	}

	advBase := sc.seedAll(cfg.Seed, n, !deterministic(a))

	space := a.StateSpace()
	states := sc.states
	if cfg.Init != nil {
		if len(cfg.Init) != n {
			return Result{}, fmt.Errorf("pull: Init has %d states, want %d", len(cfg.Init), n)
		}
		for i, s := range cfg.Init {
			if s >= space {
				return Result{}, fmt.Errorf("pull: Init[%d] outside state space", i)
			}
		}
		copy(states, cfg.Init)
	} else {
		for i := range states {
			states[i] = 0
			if space > 1 {
				states[i] = uint64(sc.initRng.Int63n(int64(space)))
			}
		}
	}

	view := &adversary.View{States: states, Faulty: faulty, Space: space, Rng: sc.advRng}
	view.SetBaseSeed(advBase)

	det := sim.NewDetector(c, cfg.Window)
	next := sc.next
	outputs := sc.outputs
	var res Result
	var totalPulls, nodeRounds uint64

	for round := uint64(0); round < cfg.MaxRounds; round++ {
		if cfg.Abort != nil && cfg.Abort() {
			return Result{}, ErrAborted
		}
		agree := true
		common := -1
		for i := 0; i < n; i++ {
			outputs[i] = a.Output(i, states[i])
			if faulty[i] {
				continue
			}
			if common == -1 {
				common = outputs[i]
			} else if outputs[i] != common {
				agree = false
			}
		}
		if cfg.OnRound != nil {
			cfg.OnRound(round, states, outputs)
		}
		res.RoundsRun = round + 1
		if det.Observe(round, agree, common) {
			res.Stabilised = true
			res.StabilisationTime = det.Time()
			res.Violations = det.Violations()
			if cfg.StopEarly {
				finishMetrics(&res, a, totalPulls, nodeRounds)
				return res, nil
			}
		}

		view.Round = round
		if batch != nil {
			for v := 0; v < n; v++ {
				if faulty[v] {
					next[v] = states[v]
				}
			}
			env := &sc.env
			env.reset(view, adv, states, next, faulty, space, sc)
			batch.StepAll(env)
			for v := 0; v < n; v++ {
				if !faulty[v] && next[v] >= space {
					return Result{}, fmt.Errorf("pull: node %d stepped outside state space", v)
				}
			}
			// Batch algorithms pull a constant PullsPerRound per correct
			// node — the same count the reference closure tallies.
			ppr := batch.PullsPerRound()
			totalPulls += ppr * correct
			nodeRounds += correct
			if correct > 0 && ppr > res.MaxPulls {
				res.MaxPulls = ppr
			}
			copy(states, next)
			continue
		}
		for v := 0; v < n; v++ {
			if faulty[v] {
				next[v] = states[v]
				continue
			}
			var pulls uint64
			puller := func(target int) alg.State {
				pulls++
				if target < 0 || target >= n {
					return 0
				}
				if faulty[target] {
					return adv.Message(view, target, v) % space
				}
				return states[target]
			}
			next[v] = a.Step(v, states[v], puller, sc.rng(v))
			if next[v] >= space {
				return Result{}, fmt.Errorf("pull: node %d stepped outside state space", v)
			}
			totalPulls += pulls
			nodeRounds++
			if pulls > res.MaxPulls {
				res.MaxPulls = pulls
			}
		}
		copy(states, next)
	}
	res.Violations = det.Violations()
	finishMetrics(&res, a, totalPulls, nodeRounds)
	return res, nil
}

func finishMetrics(res *Result, a Algorithm, totalPulls, nodeRounds uint64) {
	if nodeRounds > 0 {
		res.MeanPulls = float64(totalPulls) / float64(nodeRounds)
	}
	bits := uint64(0)
	if s := a.StateSpace(); s > 1 {
		for v := s - 1; v > 0; v >>= 1 {
			bits++
		}
	}
	res.MaxBits = res.MaxPulls * bits
}

// Broadcast adapts a broadcast-model algorithm to the pulling model by
// pulling every peer each round — the trivial (expensive) embedding the
// randomised constructions are measured against.
type Broadcast struct {
	// A is the underlying broadcast-model algorithm.
	A alg.Algorithm
}

var _ Algorithm = Broadcast{}

// N implements Algorithm.
func (b Broadcast) N() int { return b.A.N() }

// F implements Algorithm.
func (b Broadcast) F() int { return b.A.F() }

// C implements Algorithm.
func (b Broadcast) C() int { return b.A.C() }

// StateSpace implements Algorithm.
func (b Broadcast) StateSpace() uint64 { return b.A.StateSpace() }

// Output implements Algorithm.
func (b Broadcast) Output(node int, s alg.State) int { return b.A.Output(node, s) }

// Step implements Algorithm: it pulls all n-1 peers and delegates to the
// broadcast transition.
func (b Broadcast) Step(node int, own alg.State, pull Puller, rng *rand.Rand) alg.State {
	n := b.A.N()
	recv := make([]alg.State, n)
	for u := 0; u < n; u++ {
		if u == node {
			recv[u] = own
			continue
		}
		recv[u] = pull(u)
	}
	return b.A.Step(node, recv, rng)
}
