package pull

import (
	"math/rand"
	"sync"

	"github.com/synchcount/synchcount/internal/adversary"
	"github.com/synchcount/synchcount/internal/alg"
)

// BatchStepper is the sparse batch fast path of the pulling model: the
// per-round analogue of alg.BatchStepper for pull algorithms. Run and
// RunFull dispatch to StepAll when the algorithm implements it; the
// scalar reference loop is retained and the differential suite
// (kernel_differential_test.go) holds the two paths bit-identical.
//
// StepAll must be observationally identical to calling Step for every
// correct node in ascending order with the per-node pull closure:
//
//   - correct nodes are processed in ascending index order, and each
//     node's pulls are issued (via BatchEnv.Pull) in exactly the order
//     the reference Step issues them — the shared adversary stream
//     (adversary.View.Rng, consumed by e.g. Equivocate) makes faulty
//     responses order-sensitive across the whole round;
//   - node randomness is drawn from BatchEnv.Rng(v) in exactly the
//     per-node order Step draws it (streams are per-node, so only
//     within-node order matters);
//   - BatchEnv.Set must be called for every correct node. Faulty nodes
//     are handled by the kernel.
//
// Unlike the closure loop, StepAll receives no dense receive vector and
// is expected to run in O(n·pulls) time and O(n) memory — no per-node
// allocation, no O(n²) scratch.
type BatchStepper interface {
	Algorithm
	// PullsPerRound returns the constant number of pulls a correct node
	// issues per round; the kernel uses it to account MaxPulls/MeanPulls
	// without the counting closure. It must equal the number of Pull
	// calls the reference Step makes (which is the number of pulls the
	// reference loop would have counted).
	PullsPerRound() uint64
	// StepAll runs one round for every correct node.
	StepAll(env *BatchEnv)
}

// BatchEnv is the round context handed to BatchStepper.StepAll: the
// start-of-round states, the fault mask, the adversary and the node
// random streams, behind an interface that charges no dense structures.
type BatchEnv struct {
	view   *adversary.View
	adv    adversary.Adversary
	states []alg.State
	next   []alg.State
	faulty []bool
	space  uint64
	sc     *runScratch
}

func (e *BatchEnv) reset(view *adversary.View, adv adversary.Adversary, states, next []alg.State, faulty []bool, space uint64, sc *runScratch) {
	e.view = view
	e.adv = adv
	e.states = states
	e.next = next
	e.faulty = faulty
	e.space = space
	e.sc = sc
}

// N returns the network size.
func (e *BatchEnv) N() int { return len(e.states) }

// Faulty reports whether node v is Byzantine.
func (e *BatchEnv) Faulty(v int) bool { return e.faulty[v] }

// States returns the start-of-round state vector. It is shared,
// read-only context: steppers must not mutate it. Correct nodes'
// responses can be read from it directly (a pull from a correct target
// is exactly States()[target]); pulls from faulty targets must go
// through Pull so the adversary sees them in reference order.
func (e *BatchEnv) States() []alg.State { return e.states }

// Pull issues one pull by receiver from target, exactly as the
// reference loop's closure does: out-of-range targets return 0, faulty
// targets are answered by the adversary (reduced into the state space),
// correct targets respond with their start-of-round state.
func (e *BatchEnv) Pull(target, receiver int) alg.State {
	if target < 0 || target >= len(e.states) {
		return 0
	}
	if e.faulty[target] {
		return e.adv.Message(e.view, target, receiver) % e.space
	}
	return e.states[target]
}

// Rng returns node v's random stream (nil for runs of deterministic
// algorithms, which must not consult it).
func (e *BatchEnv) Rng(v int) *rand.Rand { return e.sc.rng(v) }

// Set records node v's next state.
func (e *BatchEnv) Set(v int, s alg.State) { e.next[v] = s }

// Broadcast batch path: the trivial embedding pulls every peer, so its
// sparse form is the broadcast kernel's shared-base-plus-patches idea
// collapsed to a single reused receive vector — the base copy is made
// once per round and only the ≤ f faulty slots are rewritten per
// receiver, in the ascending order the reference Step pulls them.
var broadcastScratch sync.Pool

type broadcastEnvScratch struct {
	recv      []alg.State
	faultyIdx []int
}

var _ BatchStepper = Broadcast{}

// PullsPerRound implements BatchStepper: the embedding pulls all n−1
// peers.
func (b Broadcast) PullsPerRound() uint64 { return uint64(b.A.N() - 1) }

// StepAll implements BatchStepper.
func (b Broadcast) StepAll(env *BatchEnv) {
	n := b.A.N()
	sc, _ := broadcastScratch.Get().(*broadcastEnvScratch)
	if sc == nil {
		sc = &broadcastEnvScratch{}
	}
	defer broadcastScratch.Put(sc)
	if cap(sc.recv) < n {
		sc.recv = make([]alg.State, n)
	}
	sc.recv = sc.recv[:n]
	sc.faultyIdx = sc.faultyIdx[:0]
	states := env.States()
	copy(sc.recv, states)
	for u := 0; u < n; u++ {
		if env.Faulty(u) {
			sc.faultyIdx = append(sc.faultyIdx, u)
		}
	}
	det := alg.IsDeterministic(b.A)
	for v := 0; v < n; v++ {
		if env.Faulty(v) {
			continue
		}
		// The reference Step pulls peers in ascending order; correct
		// responses are already in the shared copy, so only the faulty
		// slots draw from the adversary — same draws, same order.
		for _, u := range sc.faultyIdx {
			sc.recv[u] = env.Pull(u, v)
		}
		var rng *rand.Rand
		if !det {
			rng = env.Rng(v)
		}
		env.Set(v, b.A.Step(v, sc.recv, rng))
	}
}

// Deterministic reports whether the embedded broadcast algorithm is
// deterministic (the embedding adds no randomness).
func (b Broadcast) Deterministic() bool { return alg.IsDeterministic(b.A) }
