package pull

import (
	"testing"

	"github.com/synchcount/synchcount/internal/adversary"
	"github.com/synchcount/synchcount/internal/recursion"
)

// The BenchmarkPull_* pairs measure the sparse batch kernel against the
// retained scalar reference loop on identical configurations, reporting
// ns/round. They feed the BENCH_<pr>.json trajectory artifacts
// (`make bench-json`) and the CI bench-smoke regression gate
// (`make bench-smoke`), which fails when the sparse path's advantage
// drops below the guard ratio.
const (
	// Long-horizon RunFull regime for the construction counter: enough
	// rounds to amortise per-trial setup that both loops share.
	benchSampledRounds = 512
	// The gossip cell pays ~n·k work per round on both sides, so fewer
	// rounds keep the reference side of the n = 10^4 pair minute-free.
	benchGossipRounds = 64
)

func benchPull(b *testing.B, a Algorithm, adv adversary.Adversary, faults []int, rounds uint64, sparse bool) {
	b.Helper()
	cfg := Config{
		Alg:       a,
		Faulty:    faults,
		Adv:       adv,
		Seed:      5,
		MaxRounds: rounds,
		StopEarly: false,
	}
	run := RunFull
	if !sparse {
		run = runReference
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(rounds), "ns/round")
}

// The Theorem 4 sampled counter on the A(12,3) stack with fresh coins:
// the randomised-sampling regime, where the sparse path's decode-once
// caches and pooled dense tallies carry the win.
func benchSampled(b *testing.B) *SampledCounter {
	b.Helper()
	p := recursion.Plan{Levels: []recursion.Level{{K: 4, F: 1}, {K: 3, F: 3}}, C: 8}
	top, _, _, err := recursion.Build(p)
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewSampled(top, 24, false, 1)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkPull_Reference_Sampled_A12_M24(b *testing.B) {
	benchPull(b, benchSampled(b), adversary.Equivocate{}, []int{2, 9}, benchSampledRounds, false)
}

func BenchmarkPull_Sparse_Sampled_A12_M24(b *testing.B) {
	benchPull(b, benchSampled(b), adversary.Equivocate{}, []int{2, 9}, benchSampledRounds, true)
}

// The scale workload: fixed-wiring gossip at n = 10^4 with a 1% fault
// density — the cell the CI gate holds the sparse ≥ 1.5x line on (the
// committed trajectory shows well above that; see BENCH_6.json).
func benchGossip(b *testing.B) *Gossip {
	b.Helper()
	g, err := NewGossip(10000, 100, 8, 32, 42)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkPull_Reference_Gossip_n10000_k32(b *testing.B) {
	benchPull(b, benchGossip(b), adversary.Equivocate{}, pullSpread(10000, 100), benchGossipRounds, false)
}

func BenchmarkPull_Sparse_Gossip_n10000_k32(b *testing.B) {
	benchPull(b, benchGossip(b), adversary.Equivocate{}, pullSpread(10000, 100), benchGossipRounds, true)
}
