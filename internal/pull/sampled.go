package pull

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"github.com/synchcount/synchcount/internal/alg"
	"github.com/synchcount/synchcount/internal/boost"
	"github.com/synchcount/synchcount/internal/phaseking"
)

// SampledCounter is the randomised pulling-model counter of Theorem 4:
// the resilience-boosting construction of Theorem 1 with its two
// broadcast-dependent steps — the leader-block majority vote and the
// phase king quorum checks — replaced by uniform sampling of M states
// (with repetition, per Lemma 9), and quorum thresholds N−F and F
// replaced by ⌈2M/3⌉ and ⌊M/3⌋ (Lemma 8).
//
// Per round, a correct node pulls
//
//	(n−1) blockmates + k·M block samples + M phase king samples + 1 king
//
// messages, i.e. O(k·M) = O(k log η) for M = Θ(log η) — against N−1 for
// the deterministic broadcast embedding.
//
// With Pseudo set, all sampling wires are drawn once at construction and
// reused every round: the pseudo-random counters of Corollary 5, which
// stabilise with high probability against an oblivious adversary and
// then count deterministically forever.
type SampledCounter struct {
	top    *boost.Counter
	m      int
	pseudo bool

	pkCfg phaseking.Config

	// Fixed wiring for the pseudo-random variant, packed node-major
	// into one flat table: (k+1)·M wires per node — k·M block-sample
	// wires followed by M tally wires. Flat int32 storage quarters the
	// memory of the former [][][]int layout and removes two pointer
	// chases from every sample.
	wires      []int32
	wireStride int

	pool sync.Pool // *sampledScratch, shared across concurrent trials
}

var (
	_ Algorithm    = (*SampledCounter)(nil)
	_ BatchStepper = (*SampledCounter)(nil)
)

// NewSampled wraps the boosted counter with sampled communication.
// samples is M; pseudo selects the Corollary 5 fixed-wiring variant,
// whose wires are drawn from wireSeed.
func NewSampled(top *boost.Counter, samples int, pseudo bool, wireSeed int64) (*SampledCounter, error) {
	if top == nil {
		return nil, fmt.Errorf("pull: nil boosted counter")
	}
	if samples < 3 {
		return nil, fmt.Errorf("pull: need at least 3 samples, got %d", samples)
	}
	s := &SampledCounter{
		top:    top,
		m:      samples,
		pseudo: pseudo,
		pkCfg: phaseking.Config{
			C: uint64(top.C()),
			Thresholds: phaseking.Thresholds{
				Strong: (2*samples + 2) / 3, // ⌈2M/3⌉
				Weak:   samples / 3,         // counts > ⌊M/3⌋ pass the weak check
			},
		},
	}
	if err := s.pkCfg.Validate(); err != nil {
		return nil, err
	}
	if pseudo {
		if top.N() > math.MaxInt32 {
			return nil, fmt.Errorf("pull: %d nodes overflow the packed wire table", top.N())
		}
		rng := rand.New(rand.NewSource(wireSeed))
		n := top.N() / top.K()
		s.wireStride = (top.K() + 1) * samples
		s.wires = make([]int32, top.N()*s.wireStride)
		for v := 0; v < top.N(); v++ {
			base := v * s.wireStride
			for blk := 0; blk < top.K(); blk++ {
				for i := 0; i < samples; i++ {
					s.wires[base+blk*samples+i] = int32(blk*n + rng.Intn(n))
				}
			}
			for i := 0; i < samples; i++ {
				s.wires[base+top.K()*samples+i] = int32(rng.Intn(top.N()))
			}
		}
	}
	return s, nil
}

// blockWire returns fixed wire idx of node v into block blk.
func (s *SampledCounter) blockWire(v, blk, idx int) int {
	return int(s.wires[v*s.wireStride+blk*s.m+idx])
}

// tallyWire returns fixed phase-king wire idx of node v.
func (s *SampledCounter) tallyWire(v, idx int) int {
	return int(s.wires[v*s.wireStride+s.top.K()*s.m+idx])
}

// M returns the sample size.
func (s *SampledCounter) M() int { return s.m }

// Pseudo reports whether the fixed-wiring (Corollary 5) variant is
// active.
func (s *SampledCounter) Pseudo() bool { return s.pseudo }

// Boosted returns the underlying deterministic construction.
func (s *SampledCounter) Boosted() *boost.Counter { return s.top }

// PullsPerRound returns the deterministic per-node pull count:
// (n−1) + k·M + M + 1.
func (s *SampledCounter) PullsPerRound() uint64 {
	n := s.top.N() / s.top.K()
	return uint64(n-1) + uint64(s.top.K()*s.m) + uint64(s.m) + 1
}

// Deterministic implements alg.Deterministic: with fixed wiring over a
// deterministic base construction, no step ever flips a coin.
func (s *SampledCounter) Deterministic() bool {
	return s.pseudo && alg.IsDeterministic(s.top)
}

// N implements Algorithm.
func (s *SampledCounter) N() int { return s.top.N() }

// F implements Algorithm.
func (s *SampledCounter) F() int { return s.top.F() }

// C implements Algorithm.
func (s *SampledCounter) C() int { return s.top.C() }

// StateSpace implements Algorithm: identical to the deterministic
// construction — sampling costs no extra state (the paper's S(P) =
// S(A) + ⌈log(C+1)⌉ + 1).
func (s *SampledCounter) StateSpace() uint64 { return s.top.StateSpace() }

// Output implements Algorithm.
func (s *SampledCounter) Output(node int, st alg.State) int { return s.top.Output(node, st) }

// Step implements Algorithm.
func (s *SampledCounter) Step(v int, own alg.State, pull Puller, rng *rand.Rand) alg.State {
	top := s.top
	k := top.K()
	n := top.N() / k
	i, j := top.BlockOf(v), top.IndexInBlock(v)

	// (1) Full-information update of the block algorithm A_i: blocks are
	// small, so the paper runs them deterministically ("if N is small we
	// can perform the step using the deterministic algorithm").
	blockRecv := make([]alg.State, n)
	for jj := 0; jj < n; jj++ {
		u := i*n + jj
		if u == v {
			blockRecv[jj] = top.BaseState(own)
			continue
		}
		blockRecv[jj] = top.BaseState(pull(u))
	}
	newBase := top.Base().Step(j, blockRecv, rng)

	// (2) Sampled leader vote (Lemma 9): M states per block, with
	// repetition.
	type sample struct {
		target int
		state  alg.State
	}
	blockSamples := make([][]sample, k)
	tally := alg.NewTally(s.m)
	blockVotes := make([]uint64, k)
	for blk := 0; blk < k; blk++ {
		samples := make([]sample, s.m)
		tally.Reset()
		for idx := 0; idx < s.m; idx++ {
			var target int
			if s.pseudo {
				target = s.blockWire(v, blk, idx)
			} else {
				target = blk*n + rng.Intn(n)
			}
			st := pull(target)
			samples[idx] = sample{target: target, state: st}
			_, _, ptr := top.Leader(target, st)
			tally.Add(ptr)
		}
		blockSamples[blk] = samples
		vote, _ := tally.Majority()
		blockVotes[blk] = vote
	}
	bigB := alg.Majority(blockVotes)
	if bigB >= uint64(k) {
		bigB = 0
	}
	tally.Reset()
	for _, smp := range blockSamples[bigB] {
		r, _, _ := top.Leader(smp.target, smp.state)
		tally.Add(r)
	}
	bigR, _ := tally.Majority()
	bigR %= top.Tau()

	// (3) Sampled phase king (Lemma 8): M register samples from the whole
	// network, thresholds 2/3·M and 1/3·M.
	tally.Reset()
	for idx := 0; idx < s.m; idx++ {
		var target int
		if s.pseudo {
			target = s.tallyWire(v, idx)
		} else {
			target = rng.Intn(top.N())
		}
		tally.Add(top.Registers(pull(target)).A)
	}
	// One adaptive pull for the king selected by R.
	king := int(phaseking.KingOf(bigR))
	kingA := top.Registers(pull(king)).A

	regs := phaseking.Step(s.pkCfg, top.Registers(own), bigR, tally, kingA)
	st, err := top.Encode(newBase, regs)
	if err != nil {
		// Unreachable: newBase comes from the base algorithm.
		return own
	}
	return st
}

// sampledScratch is the pooled working set of StepAll: per-round decode
// caches of every correct node's packed state (base field, leader
// registers, phase king register A) plus the per-node vote buffers.
// Decoding once per node per round — instead of once per sample — is
// where the sparse path beats the reference loop: the reference decodes
// O((k+1)·M) sampled states per node per round.
type sampledScratch struct {
	blockRecv  []alg.State // block-size receive vector for the base step
	baseOf     []alg.State // [N] base field of start-of-round states (correct nodes)
	ldrR       []uint64    // [N] leader round counter (correct nodes)
	ldrPtr     []uint64    // [N] leader block pointer (correct nodes)
	regA       []uint64    // [N] phase king register A (correct nodes)
	sampleR    []uint64    // [k·M] leader round counters of this node's block samples
	blockVotes []uint64    // [k]
	ptrTally   *alg.DenseTally
	rTally     *alg.DenseTally
	voteTally  *alg.DenseTally
	aTally     *alg.DenseTally
}

func (s *SampledCounter) getScratch() *sampledScratch {
	sc, _ := s.pool.Get().(*sampledScratch)
	if sc == nil {
		sc = &sampledScratch{
			ptrTally:  alg.NewDenseTally(0),
			rTally:    alg.NewDenseTally(0),
			voteTally: alg.NewDenseTally(0),
			aTally:    alg.NewDenseTally(0),
		}
	}
	top := s.top
	N, k := top.N(), top.K()
	if cap(sc.baseOf) < N {
		sc.baseOf = make([]alg.State, N)
		sc.ldrR = make([]uint64, N)
		sc.ldrPtr = make([]uint64, N)
		sc.regA = make([]uint64, N)
	}
	sc.baseOf = sc.baseOf[:N]
	sc.ldrR = sc.ldrR[:N]
	sc.ldrPtr = sc.ldrPtr[:N]
	sc.regA = sc.regA[:N]
	if cap(sc.blockRecv) < N/k {
		sc.blockRecv = make([]alg.State, N/k)
	}
	sc.blockRecv = sc.blockRecv[:N/k]
	if cap(sc.sampleR) < k*s.m {
		sc.sampleR = make([]uint64, k*s.m)
	}
	sc.sampleR = sc.sampleR[:k*s.m]
	if cap(sc.blockVotes) < k {
		sc.blockVotes = make([]uint64, k)
	}
	sc.blockVotes = sc.blockVotes[:k]
	sc.ptrTally.Resize(uint64(k))
	sc.rTally.Resize(top.Tau())
	sc.voteTally.Resize(uint64(k))
	sc.aTally.Resize(uint64(top.C()) + 2)
	return sc
}

// StepAll implements BatchStepper: the same transition as Step for
// every correct node, in ascending order with reference pull/rng
// ordering, over pooled flat scratch — no per-node allocation and no
// dense receive matrix.
func (s *SampledCounter) StepAll(env *BatchEnv) {
	top := s.top
	k := top.K()
	N := top.N()
	nblk := N / k
	needRng := !(s.pseudo && alg.IsDeterministic(top))
	sc := s.getScratch()
	defer s.pool.Put(sc)

	// Decode every correct node's packed state once for the round.
	states := env.States()
	for u := 0; u < N; u++ {
		if env.Faulty(u) {
			continue
		}
		st := states[u]
		sc.baseOf[u] = top.BaseState(st)
		r, _, ptr := top.Leader(u, st)
		sc.ldrR[u], sc.ldrPtr[u] = r, ptr
		sc.regA[u] = top.Registers(st).A
	}

	for v := 0; v < N; v++ {
		if env.Faulty(v) {
			continue
		}
		i, j := top.BlockOf(v), top.IndexInBlock(v)
		var rng *rand.Rand
		if needRng {
			rng = env.Rng(v)
		}

		// (1) Blockmates, ascending — adversary draws for faulty
		// blockmates happen here, before any sampling draw, exactly as
		// in the reference Step.
		for jj := 0; jj < nblk; jj++ {
			u := i*nblk + jj
			switch {
			case u == v:
				sc.blockRecv[jj] = sc.baseOf[v]
			case env.Faulty(u):
				sc.blockRecv[jj] = top.BaseState(env.Pull(u, v))
			default:
				sc.blockRecv[jj] = sc.baseOf[u]
			}
		}
		newBase := top.Base().Step(j, sc.blockRecv, rng)

		// (2) Sampled leader vote.
		for blk := 0; blk < k; blk++ {
			sc.ptrTally.Reset()
			for idx := 0; idx < s.m; idx++ {
				var target int
				if s.pseudo {
					target = s.blockWire(v, blk, idx)
				} else {
					target = blk*nblk + rng.Intn(nblk)
				}
				var r, ptr uint64
				if env.Faulty(target) {
					r, _, ptr = top.Leader(target, env.Pull(target, v))
				} else {
					r, ptr = sc.ldrR[target], sc.ldrPtr[target]
				}
				sc.sampleR[blk*s.m+idx] = r
				sc.ptrTally.Add(ptr)
			}
			vote, _ := sc.ptrTally.Majority()
			sc.blockVotes[blk] = vote
		}
		sc.voteTally.Reset()
		for _, bv := range sc.blockVotes {
			sc.voteTally.Add(bv)
		}
		bigB, _ := sc.voteTally.Majority()
		if bigB >= uint64(k) {
			bigB = 0
		}
		sc.rTally.Reset()
		for idx := 0; idx < s.m; idx++ {
			sc.rTally.Add(sc.sampleR[int(bigB)*s.m+idx])
		}
		bigR, _ := sc.rTally.Majority()
		bigR %= top.Tau()

		// (3) Sampled phase king.
		sc.aTally.Reset()
		for idx := 0; idx < s.m; idx++ {
			var target int
			if s.pseudo {
				target = s.tallyWire(v, idx)
			} else {
				target = rng.Intn(N)
			}
			if env.Faulty(target) {
				sc.aTally.Add(top.Registers(env.Pull(target, v)).A)
			} else {
				sc.aTally.Add(sc.regA[target])
			}
		}
		king := int(phaseking.KingOf(bigR))
		var kingA uint64
		if king >= 0 && king < N && !env.Faulty(king) {
			kingA = sc.regA[king]
		} else {
			// Out-of-range kings pull the zero state, faulty kings pull
			// the adversary — both via Pull, as in the reference.
			kingA = top.Registers(env.Pull(king, v)).A
		}

		regs := phaseking.Step(s.pkCfg, top.Registers(states[v]), bigR, sc.aTally, kingA)
		st, err := top.Encode(newBase, regs)
		if err != nil {
			// Unreachable: newBase comes from the base algorithm.
			st = states[v]
		}
		env.Set(v, st)
	}
}
