package pull

import (
	"fmt"
	"math/rand"

	"github.com/synchcount/synchcount/internal/alg"
	"github.com/synchcount/synchcount/internal/boost"
	"github.com/synchcount/synchcount/internal/phaseking"
)

// SampledCounter is the randomised pulling-model counter of Theorem 4:
// the resilience-boosting construction of Theorem 1 with its two
// broadcast-dependent steps — the leader-block majority vote and the
// phase king quorum checks — replaced by uniform sampling of M states
// (with repetition, per Lemma 9), and quorum thresholds N−F and F
// replaced by ⌈2M/3⌉ and ⌊M/3⌋ (Lemma 8).
//
// Per round, a correct node pulls
//
//	(n−1) blockmates + k·M block samples + M phase king samples + 1 king
//
// messages, i.e. O(k·M) = O(k log η) for M = Θ(log η) — against N−1 for
// the deterministic broadcast embedding.
//
// With Pseudo set, all sampling wires are drawn once at construction and
// reused every round: the pseudo-random counters of Corollary 5, which
// stabilise with high probability against an oblivious adversary and
// then count deterministically forever.
type SampledCounter struct {
	top    *boost.Counter
	m      int
	pseudo bool

	pkCfg phaseking.Config

	// Fixed wiring for the pseudo-random variant.
	blockWires [][][]int // [node][block][sample] -> target
	tallyWires [][]int   // [node][sample] -> target
}

var _ Algorithm = (*SampledCounter)(nil)

// NewSampled wraps the boosted counter with sampled communication.
// samples is M; pseudo selects the Corollary 5 fixed-wiring variant,
// whose wires are drawn from wireSeed.
func NewSampled(top *boost.Counter, samples int, pseudo bool, wireSeed int64) (*SampledCounter, error) {
	if top == nil {
		return nil, fmt.Errorf("pull: nil boosted counter")
	}
	if samples < 3 {
		return nil, fmt.Errorf("pull: need at least 3 samples, got %d", samples)
	}
	s := &SampledCounter{
		top:    top,
		m:      samples,
		pseudo: pseudo,
		pkCfg: phaseking.Config{
			C: uint64(top.C()),
			Thresholds: phaseking.Thresholds{
				Strong: (2*samples + 2) / 3, // ⌈2M/3⌉
				Weak:   samples / 3,         // counts > ⌊M/3⌋ pass the weak check
			},
		},
	}
	if err := s.pkCfg.Validate(); err != nil {
		return nil, err
	}
	if pseudo {
		rng := rand.New(rand.NewSource(wireSeed))
		n := top.N() / top.K()
		s.blockWires = make([][][]int, top.N())
		s.tallyWires = make([][]int, top.N())
		for v := 0; v < top.N(); v++ {
			s.blockWires[v] = make([][]int, top.K())
			for blk := 0; blk < top.K(); blk++ {
				wires := make([]int, samples)
				for i := range wires {
					wires[i] = blk*n + rng.Intn(n)
				}
				s.blockWires[v][blk] = wires
			}
			wires := make([]int, samples)
			for i := range wires {
				wires[i] = rng.Intn(top.N())
			}
			s.tallyWires[v] = wires
		}
	}
	return s, nil
}

// M returns the sample size.
func (s *SampledCounter) M() int { return s.m }

// Pseudo reports whether the fixed-wiring (Corollary 5) variant is
// active.
func (s *SampledCounter) Pseudo() bool { return s.pseudo }

// Boosted returns the underlying deterministic construction.
func (s *SampledCounter) Boosted() *boost.Counter { return s.top }

// PullsPerRound returns the deterministic per-node pull count:
// (n−1) + k·M + M + 1.
func (s *SampledCounter) PullsPerRound() uint64 {
	n := s.top.N() / s.top.K()
	return uint64(n-1) + uint64(s.top.K()*s.m) + uint64(s.m) + 1
}

// N implements Algorithm.
func (s *SampledCounter) N() int { return s.top.N() }

// F implements Algorithm.
func (s *SampledCounter) F() int { return s.top.F() }

// C implements Algorithm.
func (s *SampledCounter) C() int { return s.top.C() }

// StateSpace implements Algorithm: identical to the deterministic
// construction — sampling costs no extra state (the paper's S(P) =
// S(A) + ⌈log(C+1)⌉ + 1).
func (s *SampledCounter) StateSpace() uint64 { return s.top.StateSpace() }

// Output implements Algorithm.
func (s *SampledCounter) Output(node int, st alg.State) int { return s.top.Output(node, st) }

// Step implements Algorithm.
func (s *SampledCounter) Step(v int, own alg.State, pull Puller, rng *rand.Rand) alg.State {
	top := s.top
	k := top.K()
	n := top.N() / k
	i, j := top.BlockOf(v), top.IndexInBlock(v)

	// (1) Full-information update of the block algorithm A_i: blocks are
	// small, so the paper runs them deterministically ("if N is small we
	// can perform the step using the deterministic algorithm").
	blockRecv := make([]alg.State, n)
	for jj := 0; jj < n; jj++ {
		u := i*n + jj
		if u == v {
			blockRecv[jj] = top.BaseState(own)
			continue
		}
		blockRecv[jj] = top.BaseState(pull(u))
	}
	newBase := top.Base().Step(j, blockRecv, rng)

	// (2) Sampled leader vote (Lemma 9): M states per block, with
	// repetition.
	type sample struct {
		target int
		state  alg.State
	}
	blockSamples := make([][]sample, k)
	tally := alg.NewTally(s.m)
	blockVotes := make([]uint64, k)
	for blk := 0; blk < k; blk++ {
		samples := make([]sample, s.m)
		tally.Reset()
		for idx := 0; idx < s.m; idx++ {
			var target int
			if s.pseudo {
				target = s.blockWires[v][blk][idx]
			} else {
				target = blk*n + rng.Intn(n)
			}
			st := pull(target)
			samples[idx] = sample{target: target, state: st}
			_, _, ptr := top.Leader(target, st)
			tally.Add(ptr)
		}
		blockSamples[blk] = samples
		vote, _ := tally.Majority()
		blockVotes[blk] = vote
	}
	bigB := alg.Majority(blockVotes)
	if bigB >= uint64(k) {
		bigB = 0
	}
	tally.Reset()
	for _, smp := range blockSamples[bigB] {
		r, _, _ := top.Leader(smp.target, smp.state)
		tally.Add(r)
	}
	bigR, _ := tally.Majority()
	bigR %= top.Tau()

	// (3) Sampled phase king (Lemma 8): M register samples from the whole
	// network, thresholds 2/3·M and 1/3·M.
	tally.Reset()
	for idx := 0; idx < s.m; idx++ {
		var target int
		if s.pseudo {
			target = s.tallyWires[v][idx]
		} else {
			target = rng.Intn(top.N())
		}
		tally.Add(top.Registers(pull(target)).A)
	}
	// One adaptive pull for the king selected by R.
	king := int(phaseking.KingOf(bigR))
	kingA := top.Registers(pull(king)).A

	regs := phaseking.Step(s.pkCfg, top.Registers(own), bigR, tally, kingA)
	st, err := top.Encode(newBase, regs)
	if err != nil {
		// Unreachable: newBase comes from the base algorithm.
		return own
	}
	return st
}
