package pull

import (
	"fmt"
	"math/rand"
	"sync"

	"github.com/synchcount/synchcount/internal/alg"
)

// Gossip is the million-node workload of the sparse pull kernel: a
// fixed-wiring k-sample plurality c-counter in the pulling model. Each
// round every node pulls its k fixed sampled neighbours (the Sampler
// wiring — the Corollary 5 pattern of drawing wires once and reusing
// them forever), takes the plurality of the sampled counter values with
// smallest-value tie-breaking, and outputs plurality+1 mod c.
//
// The recursive constructions of Theorems 1 and 4 cannot reach n = 10^6
// — their state spaces overflow 64 bits past a few hundred nodes — so
// the scale cells run this direct dynamic instead. It is the natural
// sampled-model baseline: O(k) pulls and O(log c) state per node, it
// self-stabilises with high probability under random wiring (plurality
// dynamics on a random k-out digraph contract to consensus, and the
// deterministic tie-break breaks the symmetric start), and once the
// correct nodes agree they count in lockstep forever — any later
// violation needs a node whose k fixed samples are majority-faulty.
// Unlike the construction counters it offers no worst-case resilience
// bound: F() reports the fault budget it is run with, not a guarantee.
type Gossip struct {
	n, f, k int
	c       uint64
	wires   Sampler
	pool    sync.Pool // *alg.DenseTally, shared across concurrent trials
}

var (
	_ Algorithm         = (*Gossip)(nil)
	_ BatchStepper      = (*Gossip)(nil)
	_ alg.Deterministic = (*Gossip)(nil)
)

// NewGossip builds the k-sample plurality counter on n nodes with
// modulus c; wireSeed fixes the sampling wiring. f is the fault budget
// recorded for reporting (the dynamic has no proven resilience bound).
func NewGossip(n, f, c, k int, wireSeed int64) (*Gossip, error) {
	if n < 2 {
		return nil, fmt.Errorf("pull: gossip needs n >= 2, got %d", n)
	}
	if f < 0 || f >= n {
		return nil, fmt.Errorf("pull: gossip fault budget %d out of range [0,%d)", f, n)
	}
	if c < 2 {
		return nil, fmt.Errorf("pull: gossip needs modulus c >= 2, got %d", c)
	}
	if k < 1 {
		return nil, fmt.Errorf("pull: gossip needs k >= 1 samples, got %d", k)
	}
	wires, err := NewSampler(wireSeed, n)
	if err != nil {
		return nil, err
	}
	return &Gossip{n: n, f: f, k: k, c: uint64(c), wires: wires}, nil
}

// N implements Algorithm.
func (g *Gossip) N() int { return g.n }

// F implements Algorithm: the fault budget the counter is run with.
func (g *Gossip) F() int { return g.f }

// C implements Algorithm.
func (g *Gossip) C() int { return int(g.c) }

// K returns the per-node sample count.
func (g *Gossip) K() int { return g.k }

// StateSpace implements Algorithm: the state is the counter value.
func (g *Gossip) StateSpace() uint64 { return g.c }

// Output implements Algorithm.
func (g *Gossip) Output(_ int, s alg.State) int { return int(s % g.c) }

// Deterministic implements alg.Deterministic: all randomness lives in
// the construction-time wiring.
func (g *Gossip) Deterministic() bool { return true }

// Wiring returns the fixed sampling wiring.
func (g *Gossip) Wiring() Sampler { return g.wires }

// PullsPerRound implements BatchStepper.
func (g *Gossip) PullsPerRound() uint64 { return uint64(g.k) }

// Step implements Algorithm: the scalar reference transition.
func (g *Gossip) Step(v int, _ alg.State, pull Puller, _ *rand.Rand) alg.State {
	t := alg.NewTally(g.k)
	for i := 0; i < g.k; i++ {
		t.Add(pull(g.wires.Target(v, i)))
	}
	best, _ := t.Plurality()
	return (best + 1) % g.c
}

// StepAll implements BatchStepper: the same transition over flat
// arrays, with one pooled dense tally reused across all nodes —
// allocation-free after warm-up, O(n·k) per round.
func (g *Gossip) StepAll(env *BatchEnv) {
	t, _ := g.pool.Get().(*alg.DenseTally)
	if t == nil {
		t = alg.NewDenseTally(g.c)
	} else {
		t.Resize(g.c)
	}
	defer g.pool.Put(t)
	states := env.States()
	for v := 0; v < g.n; v++ {
		if env.Faulty(v) {
			continue
		}
		t.Reset()
		for i := 0; i < g.k; i++ {
			u := g.wires.Target(v, i)
			if env.Faulty(u) {
				t.Add(env.Pull(u, v))
			} else {
				t.Add(states[u])
			}
		}
		best, _ := t.Plurality()
		env.Set(v, (best+1)%g.c)
	}
}
