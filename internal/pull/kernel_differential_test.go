package pull

import (
	"fmt"
	"testing"

	"github.com/synchcount/synchcount/internal/adversary"
	"github.com/synchcount/synchcount/internal/counter"
)

// pullKernelAdversaries are the strategies the pull equivalence grid
// runs: every stateless built-in behaviour class, including the
// shared-stream equivocator whose draws make faulty responses
// order-sensitive across the whole round — the hardest exercise of the
// batch path's pull-ordering contract.
var pullKernelAdversaries = []string{"silent", "random", "splitvote", "equivocate"}

// pullSpread places f faults evenly across n nodes.
func pullSpread(n, f int) []int {
	out := make([]int, 0, f)
	for j := 0; j < f; j++ {
		out = append(out, j*n/f)
	}
	return out
}

// pullKernelGrid enumerates one (algorithm, faults) cell per sparse
// batch implementation and mode: the broadcast embedding over a
// deterministic and a randomised base, the sampled counter with fresh
// coins and with fixed wiring, and the fixed-wiring gossip dynamic.
func pullKernelGrid(t *testing.T) []struct {
	name   string
	build  func() Algorithm
	faults []int
} {
	t.Helper()
	randAgree := func() Algorithm {
		a, err := counter.NewRandomizedAgree(12, 2)
		if err != nil {
			t.Fatal(err)
		}
		return Broadcast{A: a}
	}
	return []struct {
		name   string
		build  func() Algorithm
		faults []int
	}{
		{"broadcast/boost", func() Algorithm { return Broadcast{A: build41(t, 8).Boosted()} }, []int{1}},
		{"broadcast/randagree", randAgree, pullSpread(12, 2)},
		{"sampled/fresh", func() Algorithm { return build123(t, 8, 8, false, 0) }, []int{2, 9}},
		{"sampled/pseudo", func() Algorithm { return build123(t, 8, 8, true, 17) }, []int{2, 9}},
		{"gossip", func() Algorithm {
			g, err := NewGossip(64, 6, 8, 12, 5)
			if err != nil {
				t.Fatal(err)
			}
			return g
		}, pullSpread(64, 6)},
	}
}

// TestPullKernelMatchesReference is the sparse-vs-reference
// differential suite: every batch implementation, under every built-in
// adversary class, across a seeded grid, must produce byte-identical
// Results from the batch kernel (Run) and the retained scalar reference
// loop. This is the contract that lets the sparse kernel replace the
// closure loop underneath every pulling-model campaign.
func TestPullKernelMatchesReference(t *testing.T) {
	seeds := []int64{3, 44}
	for _, cell := range pullKernelGrid(t) {
		a := cell.build()
		if _, ok := a.(BatchStepper); !ok {
			t.Fatalf("%s: grid algorithm has no batch path", cell.name)
		}
		for _, advName := range pullKernelAdversaries {
			if advName != "silent" && len(cell.faults) == 0 {
				continue
			}
			adv, err := adversary.ByName(advName)
			if err != nil {
				t.Fatal(err)
			}
			for _, seed := range seeds {
				label := fmt.Sprintf("%s/%s/seed=%d", cell.name, advName, seed)
				cfg := Config{
					Alg:       a,
					Faulty:    cell.faults,
					Adv:       adv,
					Seed:      seed,
					MaxRounds: 192,
					StopEarly: true,
				}
				want, err := runReference(cfg)
				if err != nil {
					t.Fatalf("%s: reference: %v", label, err)
				}
				got, err := Run(cfg)
				if err != nil {
					t.Fatalf("%s: batch: %v", label, err)
				}
				if got != want {
					t.Errorf("%s: kernel diverged:\n  batch     %+v\n  reference %+v", label, got, want)
				}
			}
		}
	}
}

// TestPullKernelMatchesReferenceFull double-checks equality on the
// RunFull path (violations accounting after stabilisation) for one
// deterministic and one randomised batch algorithm.
func TestPullKernelMatchesReferenceFull(t *testing.T) {
	for _, cell := range pullKernelGrid(t) {
		if cell.name != "sampled/fresh" && cell.name != "gossip" {
			continue
		}
		a := cell.build()
		cfg := Config{
			Alg:       a,
			Faulty:    cell.faults,
			Adv:       adversary.SplitVote{},
			Seed:      11,
			MaxRounds: 256,
			StopEarly: false,
		}
		want, err := runReference(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunFull(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s: RunFull diverged:\n  batch     %+v\n  reference %+v", cell.name, got, want)
		}
	}
}

// TestPullKernelObserverParity pins the batch path under an OnRound
// observer (the unpooled scratch route) against the reference trace.
func TestPullKernelObserverParity(t *testing.T) {
	g, err := NewGossip(48, 4, 6, 8, 9)
	if err != nil {
		t.Fatal(err)
	}
	trace := func(ref bool) []uint64 {
		var rows []uint64
		cfg := Config{
			Alg:       g,
			Faulty:    pullSpread(48, 4),
			Adv:       adversary.Equivocate{},
			Seed:      7,
			MaxRounds: 64,
			OnRound: func(round uint64, states []uint64, outputs []int) {
				for _, s := range states {
					rows = append(rows, s)
				}
			},
		}
		var runErr error
		if ref {
			_, runErr = runReference(cfg)
		} else {
			_, runErr = RunFull(cfg)
		}
		if runErr != nil {
			t.Fatal(runErr)
		}
		return rows
	}
	want, got := trace(true), trace(false)
	if len(want) != len(got) {
		t.Fatalf("trace lengths differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("state trace diverged at %d: %d vs %d", i, want[i], got[i])
		}
	}
}
