package pull

import (
	"context"

	"github.com/synchcount/synchcount/internal/harness"
)

// CampaignScenario adapts a pulling-model Config to a campaign scenario
// running `trials` independent trials. The scenario pins cfg.Seed as
// its base seed; cfg.StopEarly selects Run vs RunFull semantics. The
// Config is shared across concurrent trials, so everything it
// references must be read-only during a run — true of all built-in
// adversaries and of SampledCounter, whose wiring is fixed at
// construction.
func CampaignScenario(name string, cfg Config, trials int) harness.Scenario {
	return harness.Scenario{
		Name:   name,
		Trials: trials,
		Seed:   &cfg.Seed,
		Run: func(ctx context.Context, _ int, trialSeed int64) (harness.Observation, error) {
			c := cfg
			c.Seed = trialSeed
			if c.Abort == nil {
				c.Abort = func() bool { return ctx.Err() != nil }
			}
			var r Result
			var err error
			if c.StopEarly {
				r, err = Run(c)
			} else {
				r, err = RunFull(c)
			}
			if err != nil {
				return harness.Observation{}, err
			}
			return harness.Observation{
				Stabilised:        r.Stabilised,
				StabilisationTime: r.StabilisationTime,
				RoundsRun:         r.RoundsRun,
				Violations:        r.Violations,
				BitsPerRound:      r.MaxBits,
				MaxPulls:          r.MaxPulls,
				MeanPulls:         r.MeanPulls,
			}, nil
		},
	}
}
