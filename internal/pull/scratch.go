package pull

import (
	"math/rand"
	"sync"

	"github.com/synchcount/synchcount/internal/alg"
)

// runScratch is the per-run working set of the pulling-model simulator:
// every O(n)-sized slice and RNG a run needs, recycled through a
// sync.Pool exactly like the broadcast simulator's scratch. The
// million-node cells make one extra demand the broadcast pool never
// faced: a math/rand source costs ~5 KB, so n eagerly-seeded node
// streams would be 5 GB at n = 10^6. Node RNGs are therefore doubly
// lazy — seeds are drawn up front (preserving the historical master
// seed stream), but the source behind a node's stream is allocated only
// on the node's first draw, and deterministic algorithms skip the seed
// draws entirely.
type runScratch struct {
	faulty  []bool
	states  []alg.State
	next    []alg.State
	outputs []int
	seeder  *rand.Rand
	initRng *rand.Rand
	advRng  *rand.Rand

	// Node streams: seeds[i] is drawn eagerly by seedAll (the stream
	// order the eager historical loop used), rngs[i]/srcs[i] materialise
	// on first use and are lazily reseeded on pooled reuse.
	nodeSeeds []int64
	nodeSrcs  []*lazySource
	nodeRngs  []*rand.Rand
	seeded    bool

	env BatchEnv
}

var scratchPool sync.Pool

// getScratch fetches (or creates) a pooled scratch sized for n nodes.
func getScratch(n int) *runScratch {
	s, _ := scratchPool.Get().(*runScratch)
	if s == nil {
		s = &runScratch{}
	}
	s.resize(n)
	return s
}

// putScratch returns a scratch to the pool.
func putScratch(s *runScratch) { scratchPool.Put(s) }

// newScratch returns an unpooled scratch for n nodes (used when the
// caller may retain the state slices, see run).
func newScratch(n int) *runScratch {
	s := &runScratch{}
	s.resize(n)
	return s
}

// resize (re)provisions the working set for n nodes and clears the
// fault mask; the state slices need no clearing because every run fully
// overwrites them before reading.
func (s *runScratch) resize(n int) {
	if cap(s.faulty) < n {
		s.faulty = make([]bool, n)
		s.states = make([]alg.State, n)
		s.next = make([]alg.State, n)
		s.outputs = make([]int, n)
	}
	s.faulty = s.faulty[:n]
	for i := range s.faulty {
		s.faulty[i] = false
	}
	s.states = s.states[:n]
	s.next = s.next[:n]
	s.outputs = s.outputs[:n]
	if s.seeder == nil {
		s.seeder = rand.New(rand.NewSource(0))
		s.initRng = rand.New(rand.NewSource(0))
		s.advRng = rand.New(rand.NewSource(0))
	}
	s.seeded = false
}

// seedAll reproduces the historical seed derivation of run():
// independent streams for initial states, the adversary and every node,
// drawn from the master seed in a fixed order. withNodeRngs skips the
// per-node seed draws for deterministic algorithms; they are the last
// draws taken from the master seeder, so skipping them leaves every
// other stream — and therefore every historical result — untouched.
func (s *runScratch) seedAll(seed int64, n int, withNodeRngs bool) (advBase int64) {
	s.seeder.Seed(seed)
	s.initRng.Seed(s.seeder.Int63())
	s.advRng.Seed(s.seeder.Int63())
	advBase = s.seeder.Int63()
	if withNodeRngs {
		for len(s.nodeSeeds) < n {
			s.nodeSeeds = append(s.nodeSeeds, 0)
			s.nodeSrcs = append(s.nodeSrcs, nil)
			s.nodeRngs = append(s.nodeRngs, nil)
		}
		for i := 0; i < n; i++ {
			s.nodeSeeds[i] = s.seeder.Int63()
			if s.nodeSrcs[i] != nil {
				// Already materialised by an earlier pooled run: record
				// the new seed; the scramble happens on first draw.
				s.nodeSrcs[i].Seed(s.nodeSeeds[i])
			}
		}
		s.seeded = true
	}
	return advBase
}

// rng returns node v's random stream, materialising it on first use.
// It returns nil for runs of deterministic algorithms (which never
// consult it) — the contract mirrors alg.Algorithm's "rng may be nil
// for deterministic algorithms".
func (s *runScratch) rng(v int) *rand.Rand {
	if !s.seeded {
		return nil
	}
	if s.nodeRngs[v] == nil {
		src := &lazySource{inner: rand.NewSource(0).(rand.Source64)}
		src.Seed(s.nodeSeeds[v])
		s.nodeSrcs[v] = src
		s.nodeRngs[v] = rand.New(src)
	}
	return s.nodeRngs[v]
}

// lazySource defers the expensive seed scramble of math/rand (~600
// mixing iterations per source) until the stream is first consulted,
// exactly as in the broadcast simulator's scratch. Values are
// bit-identical to an eagerly seeded source: Seed only records the
// seed, and the first draw performs exactly the scramble the eager path
// would have.
type lazySource struct {
	inner   rand.Source64
	pending int64
	dirty   bool
}

func (l *lazySource) Seed(seed int64) { l.pending, l.dirty = seed, true }

func (l *lazySource) materialize() {
	if l.dirty {
		l.inner.Seed(l.pending)
		l.dirty = false
	}
}

func (l *lazySource) Int63() int64 {
	l.materialize()
	return l.inner.Int63()
}

func (l *lazySource) Uint64() uint64 {
	l.materialize()
	return l.inner.Uint64()
}
