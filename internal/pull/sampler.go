package pull

import "fmt"

// Sampler is the stateless fixed-wiring neighbour sampler behind the
// large-n pulling cells: Target(node, slot) maps a (node, slot) pair to
// a pseudo-random neighbour in [0, n) \ {node} by finalising a
// SplitMix64 mix of the seed and the pair. Because the wiring is a pure
// function, a million-node algorithm carries its entire communication
// graph in 16 bytes — no per-node RNG (~5 KB each) and no materialised
// wire table (O(n·k) ints) — which is what keeps the sparse kernel at
// O(n) memory.
//
// This is exactly the Corollary 5 communication pattern: wires are
// drawn once (here: fixed by the seed) and reused every round, trading
// adaptivity for an oblivious-adversary guarantee.
//
// The draw is a modulo reduction of a 64-bit word, so it carries a
// selection bias of at most 2^-33 for any n < 2^31 — far below
// anything a simulation could resolve.
type Sampler struct {
	seed uint64
	n    int
}

// NewSampler returns a sampler over [0, n); n must be at least 2 so
// that excluding the caller leaves a non-empty range.
func NewSampler(seed int64, n int) (Sampler, error) {
	if n < 2 {
		return Sampler{}, fmt.Errorf("pull: sampler needs n >= 2, got %d", n)
	}
	return Sampler{seed: uint64(seed), n: n}, nil
}

// N returns the population size.
func (s Sampler) N() int { return s.n }

// Target returns the fixed wire target of (node, slot): a value in
// [0, n) different from node, deterministic in (seed, node, slot).
func (s Sampler) Target(node, slot int) int {
	z := s.seed + uint64(node)*0x9e3779b97f4a7c15 + uint64(slot)*0xd1b54a32d192ed03
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	// Draw from [0, n-1) and shift past the caller: excludes self
	// without rejection, keeping Target O(1) and allocation-free.
	t := int(z % uint64(s.n-1))
	if t >= node {
		t++
	}
	return t
}
