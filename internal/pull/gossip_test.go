package pull

import (
	"testing"

	"github.com/synchcount/synchcount/internal/adversary"
)

func TestNewGossipValidation(t *testing.T) {
	cases := []struct {
		n, f, c, k int
	}{
		{1, 0, 8, 4},   // too few nodes
		{10, -1, 8, 4}, // negative faults
		{10, 10, 8, 4}, // all faulty
		{10, 1, 1, 4},  // degenerate modulus
		{10, 1, 8, 0},  // no samples
	}
	for _, cse := range cases {
		if _, err := NewGossip(cse.n, cse.f, cse.c, cse.k, 1); err == nil {
			t.Errorf("NewGossip(%d,%d,%d,%d) accepted", cse.n, cse.f, cse.c, cse.k)
		}
	}
	if _, err := NewGossip(300, 3, 8, 16, 1); err != nil {
		t.Fatalf("valid gossip rejected: %v", err)
	}
}

func TestGossipStabilisesAndCounts(t *testing.T) {
	g, err := NewGossip(300, 3, 8, 16, 42)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 5; seed++ {
		r, err := RunFull(Config{
			Alg:       g,
			Faulty:    pullSpread(300, 3),
			Adv:       adversary.Equivocate{},
			Seed:      seed,
			MaxRounds: 300,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !r.Stabilised {
			t.Errorf("seed %d: did not stabilise", seed)
			continue
		}
		// Once the correct nodes agree they count in lockstep: any
		// violation would need a node whose fixed samples are
		// majority-faulty, which a 1% fault density cannot produce.
		if r.Violations != 0 {
			t.Errorf("seed %d: %d post-stabilisation violations", seed, r.Violations)
		}
	}
}

func TestGossipPullBudget(t *testing.T) {
	g, err := NewGossip(64, 2, 4, 9, 3)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(Config{
		Alg:       g,
		Faulty:    []int{0, 32},
		Adv:       adversary.Silent{},
		Seed:      1,
		MaxRounds: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxPulls != 9 || r.MeanPulls != 9 {
		t.Errorf("pull budget: max=%d mean=%f, want 9/9", r.MaxPulls, r.MeanPulls)
	}
}

func TestSamplerContract(t *testing.T) {
	if _, err := NewSampler(1, 1); err == nil {
		t.Error("sampler accepted n=1")
	}
	for _, n := range []int{2, 3, 17, 1000} {
		s, err := NewSampler(99, n)
		if err != nil {
			t.Fatal(err)
		}
		again, _ := NewSampler(99, n)
		for node := 0; node < n && node < 64; node++ {
			for slot := 0; slot < 16; slot++ {
				tgt := s.Target(node, slot)
				if tgt < 0 || tgt >= n {
					t.Fatalf("n=%d: target %d out of range", n, tgt)
				}
				if tgt == node {
					t.Fatalf("n=%d: node %d sampled itself", n, node)
				}
				if again.Target(node, slot) != tgt {
					t.Fatalf("n=%d: sampler not deterministic", n)
				}
			}
		}
	}
}

// TestGossipDeterministicGivenSeed pins the Corollary 5 property the
// fixed wiring buys: the whole trajectory is a function of (wiring,
// seed), so rerunning a configuration reproduces the Result exactly.
func TestGossipDeterministicGivenSeed(t *testing.T) {
	g, err := NewGossip(200, 2, 6, 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Alg:       g,
		Faulty:    []int{10, 110},
		Adv:       adversary.Equivocate{},
		Seed:      13,
		MaxRounds: 200,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("gossip run not reproducible: %+v vs %+v", a, b)
	}
}
