package pull

import (
	"testing"

	"github.com/synchcount/synchcount/internal/adversary"
	"github.com/synchcount/synchcount/internal/alg"
	"github.com/synchcount/synchcount/internal/counter"
	"github.com/synchcount/synchcount/internal/recursion"
)

func build41(t *testing.T, c int) *SampledCounter {
	t.Helper()
	p, err := recursion.Corollary1(1, c)
	if err != nil {
		t.Fatal(err)
	}
	top, _, _, err := recursion.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSampled(top, 8, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunValidation(t *testing.T) {
	s := build41(t, 8)
	tests := []struct {
		name string
		cfg  Config
	}{
		{"nil alg", Config{MaxRounds: 10}},
		{"zero rounds", Config{Alg: s}},
		{"faulty out of range", Config{Alg: s, MaxRounds: 10, Faulty: []int{99}}},
		{"faulty duplicate", Config{Alg: s, MaxRounds: 10, Faulty: []int{1, 1}}},
		{"bad init", Config{Alg: s, MaxRounds: 10, Init: []alg.State{1}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Run(tt.cfg); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestNewSampledValidation(t *testing.T) {
	if _, err := NewSampled(nil, 8, false, 0); err == nil {
		t.Error("nil top should fail")
	}
	p, _ := recursion.Corollary1(1, 8)
	top, _, _, err := recursion.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSampled(top, 2, false, 0); err == nil {
		t.Error("M = 2 should fail")
	}
}

func TestBroadcastEmbedding(t *testing.T) {
	// The trivial embedding pulls exactly n-1 peers per round and
	// behaves like the broadcast-model algorithm.
	m, err := counter.NewMaxStep(5, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Alg: Broadcast{A: m}, Seed: 3, MaxRounds: 300})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stabilised || res.StabilisationTime > 1 {
		t.Fatalf("broadcast embedding: stabilised=%v t=%d", res.Stabilised, res.StabilisationTime)
	}
	if res.MaxPulls != 4 {
		t.Fatalf("MaxPulls = %d, want 4", res.MaxPulls)
	}
}

func TestSampledPullBudget(t *testing.T) {
	// A(4,1): blocks of n=1, k=4; with M=8: 0 + 4·8 + 8 + 1 = 41 pulls.
	s := build41(t, 8)
	if got := s.PullsPerRound(); got != 41 {
		t.Fatalf("PullsPerRound = %d, want 41", got)
	}
	res, err := Run(Config{Alg: s, Seed: 5, MaxRounds: 3200, Window: 80})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxPulls != s.PullsPerRound() {
		t.Fatalf("measured MaxPulls = %d, want %d", res.MaxPulls, s.PullsPerRound())
	}
	if !res.Stabilised {
		t.Fatal("sampled A(4,1) did not stabilise fault-free")
	}
}

// TestSampledSavesMessages is the headline of Section 5: on a 12-node
// network the sampled counter with small M pulls fewer messages per
// round than the deterministic broadcast embedding only when N is large
// relative to k·M; we check the arithmetic both ways.
func TestSampledSavesMessages(t *testing.T) {
	p, err := recursion.Figure2(8)
	if err != nil {
		t.Fatal(err)
	}
	top, _, _, err := recursion.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSampled(top, 4, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	// N = 36: broadcast embedding pulls 35; sampled pulls 11 + 3·4 + 4 + 1 = 28.
	if s.PullsPerRound() >= 35 {
		t.Fatalf("sampled pulls %d should beat broadcast's 35", s.PullsPerRound())
	}
}

// build123 returns the two-level A(12,3) stack wrapped with sampling.
// Sampling concentration (Lemma 8) needs the faulty fraction to sit well
// below the 1/3 threshold, so fault-injection tests run on 12 nodes with
// one or two actual faults rather than on N = 4 where a single fault is
// already 25% of the network.
func build123(t *testing.T, c, m int, pseudo bool, wireSeed int64) *SampledCounter {
	t.Helper()
	p := recursion.Plan{Levels: []recursion.Level{{K: 4, F: 1}, {K: 3, F: 3}}, C: c}
	top, _, _, err := recursion.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSampled(top, m, pseudo, wireSeed)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSampledStabilisesWithFault(t *testing.T) {
	if testing.Short() {
		t.Skip("sampled 12-node simulation in -short mode")
	}
	s := build123(t, 8, 24, false, 0)
	bound := s.Boosted().StabilisationBound()
	stabilised := 0
	for seed := int64(0); seed < 3; seed++ {
		res, err := Run(Config{
			Alg:       s,
			Faulty:    []int{int(seed*5) % 12},
			Adv:       adversary.Equivocate{},
			Seed:      seed,
			MaxRounds: bound + 2000,
			Window:    100,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stabilised {
			stabilised++
		}
	}
	// One fault in twelve nodes with M = 24: misfire probability per
	// node-round is negligible; every run should stabilise.
	if stabilised < 3 {
		t.Fatalf("only %d/3 sampled runs stabilised", stabilised)
	}
}

func TestPseudoRandomWiringIsDeterministic(t *testing.T) {
	p, err := recursion.Corollary1(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	top, _, _, err := recursion.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewSampled(top, 6, true, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSampled(top, 6, true, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Pseudo() || !b.Pseudo() {
		t.Fatal("pseudo flag lost")
	}
	cfg := Config{Alg: a, Faulty: []int{2}, Adv: adversary.Silent{}, Seed: 9, MaxRounds: 3000, Window: 80}
	ra, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Alg = b
	rb, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ra != rb {
		t.Fatalf("same wire seed must reproduce: %+v vs %+v", ra, rb)
	}
}

// TestPseudoRandomCountsDeterministically: Corollary 5's promise — once
// a pseudo-random run stabilises, counting continues with zero
// violations (there is no residual per-round failure probability,
// because the fixed wiring makes every subsequent round deterministic).
func TestPseudoRandomCountsDeterministically(t *testing.T) {
	if testing.Short() {
		t.Skip("sampled 12-node simulation in -short mode")
	}
	s := build123(t, 8, 24, true, 7)
	res, err := RunFull(Config{
		Alg:       s,
		Faulty:    []int{3},
		Adv:       adversary.SplitVote{}, // oblivious: strategy ignores the wiring
		Seed:      13,
		MaxRounds: s.Boosted().StabilisationBound() + 1500,
		Window:    80,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stabilised {
		t.Skip("this wiring did not stabilise (allowed with small probability)")
	}
	if res.Violations != 0 {
		t.Fatalf("pseudo-random counter violated agreement %d times after stabilising", res.Violations)
	}
}

// TestSampledStateSpaceUnchanged: sampling must not add state bits
// (Theorem 4's S(P) = S(A) + ⌈log(C+1)⌉ + 1, same as Theorem 1).
func TestSampledStateSpaceUnchanged(t *testing.T) {
	s := build41(t, 8)
	if s.StateSpace() != s.Boosted().StateSpace() {
		t.Fatalf("state space changed: %d vs %d", s.StateSpace(), s.Boosted().StateSpace())
	}
	if s.N() != 4 || s.F() != 1 || s.C() != 8 {
		t.Fatalf("N,F,C = %d,%d,%d", s.N(), s.F(), s.C())
	}
}

// TestUndersampledFails: with tiny M relative to the fault rate the
// quorum checks misfire and violations appear — the failure-probability
// trade-off of Corollary 4, from the other side.
func TestUndersampledFailsOccasionally(t *testing.T) {
	p, err := recursion.Corollary1(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	top, _, _, err := recursion.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSampled(top, 3, false, 0) // M = 3 on N = 4 with 1 fault
	if err != nil {
		t.Fatal(err)
	}
	violations := uint64(0)
	for seed := int64(0); seed < 6; seed++ {
		res, err := RunFull(Config{
			Alg:       s,
			Faulty:    []int{0},
			Adv:       adversary.Equivocate{},
			Seed:      seed,
			MaxRounds: 4000,
			Window:    60,
		})
		if err != nil {
			t.Fatal(err)
		}
		violations += res.Violations
	}
	t.Logf("M=3: %d post-stabilisation violations across 6 runs", violations)
	// No assertion on a positive count (it is random); the test pins that
	// the accounting runs and that the simulator survives misfires.
}
