package pull

import (
	"sync"
	"testing"

	"github.com/synchcount/synchcount/internal/boost"
	"github.com/synchcount/synchcount/internal/recursion"
)

// FuzzSampler fuzzes the stateless neighbour sampler: for any seed and
// population, every wire must land in range, never select the caller,
// and be a pure function of (seed, node, slot).
func FuzzSampler(f *testing.F) {
	f.Add(int64(1), uint16(2), uint32(0), uint16(0))
	f.Add(int64(-7), uint16(1000), uint32(999), uint16(31))
	f.Add(int64(0), uint16(3), uint32(7), uint16(255))
	f.Fuzz(func(t *testing.T, seed int64, nRaw uint16, nodeRaw uint32, slotRaw uint16) {
		n := int(nRaw)
		if n < 2 {
			t.Skip()
		}
		s, err := NewSampler(seed, n)
		if err != nil {
			t.Fatal(err)
		}
		node := int(nodeRaw) % n
		slot := int(slotRaw)
		tgt := s.Target(node, slot)
		if tgt < 0 || tgt >= n {
			t.Fatalf("target %d out of [0,%d)", tgt, n)
		}
		if tgt == node {
			t.Fatalf("node %d sampled itself", node)
		}
		again, err := NewSampler(seed, n)
		if err != nil {
			t.Fatal(err)
		}
		if again.Target(node, slot) != tgt {
			t.Fatal("sampler not deterministic under seed")
		}
	})
}

var (
	fuzzTopOnce sync.Once
	fuzzTop     *boost.Counter
)

// fuzzBoostTop builds (once) the small A(4,1) stack the wire-table fuzz
// target wraps.
func fuzzBoostTop(t *testing.T) *boost.Counter {
	t.Helper()
	fuzzTopOnce.Do(func() {
		p, err := recursion.Corollary1(1, 8)
		if err != nil {
			t.Fatal(err)
		}
		top, _, _, err := recursion.Build(p)
		if err != nil {
			t.Fatal(err)
		}
		fuzzTop = top
	})
	return fuzzTop
}

// FuzzWireTable fuzzes the packed fixed-wiring table of the Corollary 5
// counter: for any wire seed and sample size, construction must not
// panic, every block wire must stay inside its block, every tally wire
// inside the network, and the whole table must be deterministic in the
// seed.
func FuzzWireTable(f *testing.F) {
	f.Add(int64(1), uint8(3))
	f.Add(int64(-123456789), uint8(16))
	f.Add(int64(0), uint8(255))
	f.Fuzz(func(t *testing.T, wireSeed int64, mRaw uint8) {
		m := 3 + int(mRaw)%30
		top := fuzzBoostTop(t)
		s, err := NewSampled(top, m, true, wireSeed)
		if err != nil {
			t.Fatal(err)
		}
		again, err := NewSampled(top, m, true, wireSeed)
		if err != nil {
			t.Fatal(err)
		}
		n := top.N() / top.K()
		for v := 0; v < top.N(); v++ {
			for blk := 0; blk < top.K(); blk++ {
				for i := 0; i < m; i++ {
					w := s.blockWire(v, blk, i)
					if w < blk*n || w >= (blk+1)*n {
						t.Fatalf("block wire (%d,%d,%d) = %d escapes block", v, blk, i, w)
					}
					if again.blockWire(v, blk, i) != w {
						t.Fatal("wire table not deterministic under seed")
					}
				}
			}
			for i := 0; i < m; i++ {
				w := s.tallyWire(v, i)
				if w < 0 || w >= top.N() {
					t.Fatalf("tally wire (%d,%d) = %d out of range", v, i, w)
				}
				if again.tallyWire(v, i) != w {
					t.Fatal("wire table not deterministic under seed")
				}
			}
		}
	})
}
