// Consensus: the paper's introductory observation made executable —
// "given a synchronous counting algorithm one can design a binary
// consensus algorithm". A stabilised counter provides the round numbers
// that the phase king protocol needs, turning it into a self-stabilising
// *repeated consensus* service: every epoch of 3(f+2) rounds decides one
// value with agreement and validity, forever, despite Byzantine nodes
// and despite the arbitrary power-on state.
//
// Scenario: four replicas vote each epoch on whether to commit a batch
// (binary consensus). Replica 3 is Byzantine. One honest replica
// occasionally dissents; the decision must still be unanimous among
// honest replicas, and unanimous votes must win.
package main

import (
	"fmt"
	"log"

	"github.com/synchcount/synchcount"
)

func main() {
	// Clock: the A(4,1) counter, modulus 90 = 10 epochs of τ = 9 rounds.
	clock, err := synchcount.OptimalResilience(1, 90)
	if err != nil {
		log.Fatal(err)
	}
	bound, _ := synchcount.StabilisationBound(clock)

	// Votes: epochs alternate between unanimous commits and a split
	// vote where replica (epoch mod 3) dissents.
	votes := func(node int, epoch uint64) uint64 {
		if epoch%2 == 0 {
			return 1 // everyone votes commit
		}
		if uint64(node) == epoch%3 {
			return 0 // one dissenter
		}
		return 1
	}
	svc, err := synchcount.RepeatedConsensus(clock, 2, votes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replicated commit service: %d replicas, %d Byzantine, epoch = %d ticks\n",
		svc.N(), svc.F(), svc.Tau())
	fmt.Printf("self-stabilises within %d ticks of any glitch\n\n", bound)

	byz := 3
	type epochResult struct {
		epoch     uint64
		decisions []int
	}
	var results []epochResult
	_, err = synchcount.SimulateFull(synchcount.SimConfig{
		Alg:       svc,
		Faulty:    []int{byz},
		Adv:       synchcount.MustAdversary("splitvote"),
		Seed:      5,
		MaxRounds: bound + 200,
		Window:    1,
		OnRound: func(round uint64, states []synchcount.State, outputs []int) {
			if round <= bound {
				return
			}
			val := uint64(svc.ClockValue(0, states[0]))
			if val%svc.Tau() != 0 || val/svc.Tau() == 0 {
				return
			}
			r := epochResult{epoch: val/svc.Tau() - 1}
			for u, d := range outputs {
				if u != byz {
					r.decisions = append(r.decisions, d)
				}
			}
			results = append(results, r)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("post-stabilisation epochs (decisions of the 3 honest replicas):")
	agreed, valid := true, true
	for _, r := range results {
		verdict := "commit"
		if r.decisions[0] == 0 {
			verdict = "abort"
		}
		kind := "unanimous commit votes"
		if r.epoch%2 == 1 {
			kind = fmt.Sprintf("replica %d dissents", r.epoch%3)
		}
		fmt.Printf("  epoch %2d (%-22s): decisions %v -> %s\n", r.epoch, kind, r.decisions, verdict)
		for _, d := range r.decisions[1:] {
			if d != r.decisions[0] {
				agreed = false
			}
		}
		if r.epoch%2 == 0 && r.decisions[0] != 1 {
			valid = false
		}
	}
	fmt.Println()
	switch {
	case agreed && valid:
		fmt.Println("agreement held in every epoch; unanimous votes always committed.")
	case !agreed:
		fmt.Println("AGREEMENT VIOLATED — this should be impossible")
	default:
		fmt.Println("VALIDITY VIOLATED — this should be impossible")
	}
}
