// Energy: the Section 5 pulling-model scenario. In a circuit, each node
// pays the energy for the messages *it* pulls; limiting the per-round
// pull budget of every node also caps what Byzantine nodes can spend.
//
// This example runs the 12-node counter three ways — the deterministic
// broadcast embedding, the sampled counter of Theorem 4, and the
// pseudo-random fixed-wiring counter of Corollary 5 — and compares
// per-node energy (pulls and bits per round) against reliability.
package main

import (
	"fmt"
	"log"

	"github.com/synchcount/synchcount"
)

func main() {
	plan := synchcount.Plan{
		Levels: []synchcount.PlanLevel{{K: 4, F: 1}, {K: 3, F: 3}},
		C:      8,
	}
	cnt, _, stats, err := synchcount.FromPlan(plan)
	if err != nil {
		log.Fatal(err)
	}
	faulty := []int{4, 10}
	horizon := stats.TimeBound + 1500

	fmt.Printf("network: A(%d,%d), faults %v, horizon %d rounds\n\n", cnt.N(), cnt.F(), faulty, horizon)
	fmt.Printf("%-26s %-12s %-12s %-12s %-12s\n", "variant", "pulls/round", "bits/round", "stabilised", "violations")
	fmt.Printf("%-26s %-12s %-12s %-12s %-12s\n", "-------", "-----------", "----------", "----------", "----------")

	report := func(name string, a synchcount.PullAlgorithm) {
		res, err := synchcount.SimulatePullFull(synchcount.PullConfig{
			Alg:       a,
			Faulty:    faulty,
			Adv:       synchcount.MustAdversary("equivocate"),
			Seed:      21,
			MaxRounds: horizon,
			Window:    96,
		})
		if err != nil {
			log.Fatal(err)
		}
		stab := "no"
		if res.Stabilised {
			stab = fmt.Sprintf("round %d", res.StabilisationTime)
		}
		fmt.Printf("%-26s %-12d %-12d %-12s %-12d\n", name, res.MaxPulls, res.MaxBits, stab, res.Violations)
	}

	// Deterministic reference: pull everything (Theorem 1 as-is).
	report("broadcast (det.)", synchcount.PullBroadcast(cnt))

	// Theorem 4: fresh samples each round. Small M trades energy for a
	// residual per-round failure probability (violations > 0 possible).
	for _, m := range []int{6, 24} {
		s, err := synchcount.Sampled(cnt, m, false, 1)
		if err != nil {
			log.Fatal(err)
		}
		report(fmt.Sprintf("sampled M=%d (Thm 4)", m), s)
	}

	// Corollary 5: wiring fixed once; against an oblivious adversary a
	// good wiring stabilises and then counts deterministically forever.
	s, err := synchcount.Sampled(cnt, 24, true, 99)
	if err != nil {
		log.Fatal(err)
	}
	report("pseudo-random M=24 (Cor 5)", s)

	fmt.Println("\nreading: the sampled counters cap every node's energy budget; larger M buys")
	fmt.Println("reliability, and fixing the wiring (Cor 5) removes the residual failure rate")
	fmt.Println("entirely once stabilised — at the cost of assuming an oblivious adversary.")
}
