// Quickstart: build the paper's A(4,1) counter — four nodes, one
// Byzantine, counting modulo 3 — and watch it stabilise from an
// arbitrary initial configuration, reproducing the worked execution at
// the start of Section 1:
//
//	Node 1: 2 2 0 2 0 0 1 2 0 1 2 ...
//	Node 2: 0 2 0 1 0 0 1 2 0 1 2 ...
//	Node 3: faulty node, arbitrary behaviour
//	Node 4: 0 0 2 0 2 0 1 2 0 1 2 ...
//	        `--- stabilisation ---'`--- counting ---'
package main

import (
	"fmt"
	"log"

	"github.com/synchcount/synchcount"
)

func main() {
	// A synchronous 3-counter for n = 4 nodes tolerating f = 1 Byzantine
	// failure, built by the paper's Theorem 1 from the trivial 1-node
	// counter (Corollary 1).
	cnt, err := synchcount.OptimalResilience(1, 3)
	if err != nil {
		log.Fatal(err)
	}
	bound, _ := synchcount.StabilisationBound(cnt)
	fmt.Printf("counter: n=%d nodes, f=%d Byzantine, counting mod %d\n", cnt.N(), cnt.F(), cnt.C())
	fmt.Printf("state  : %d bits per node; stabilises within %d rounds, guaranteed\n\n",
		synchcount.StateBits(cnt), bound)

	// Record every node's output over time. Node 2 is Byzantine and
	// equivocates (sends different states to different peers each round).
	const horizon = 40
	traces := make([][]int, cnt.N())
	res, err := synchcount.SimulateFull(synchcount.SimConfig{
		Alg:       cnt,
		Faulty:    []int{2},
		Adv:       synchcount.MustAdversary("equivocate"),
		Seed:      7,
		MaxRounds: horizon,
		Window:    16,
		OnRound: func(_ uint64, _ []synchcount.State, outputs []int) {
			for i, o := range outputs {
				traces[i] = append(traces[i], o)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	for i, trace := range traces {
		if i == 2 {
			fmt.Printf("node %d: faulty node, arbitrary behaviour\n", i+1)
			continue
		}
		fmt.Printf("node %d: ", i+1)
		for _, o := range trace {
			fmt.Printf("%d ", o)
		}
		fmt.Println()
	}
	if res.Stabilised {
		fmt.Printf("\nstabilised at round %d: from there on, all correct nodes agree and count mod %d\n",
			res.StabilisationTime, cnt.C())
	} else {
		fmt.Println("\ndid not stabilise within the horizon (unexpected!)")
	}
}
