// TDMA: the paper's motivating application. "Synchronous counting is a
// coordination primitive that can be used e.g. in large integrated
// circuits to synchronise subsystems so that we can easily implement
// mutual exclusion and time division multiple access in a fault-tolerant
// manner."
//
// This example builds a shared bus with 12 subsystems, 3 of which are
// Byzantine. Each subsystem may drive the bus only in its own slot of a
// 12-slot TDMA schedule derived from the self-stabilising counter. The
// example injects a power-on glitch (arbitrary initial states) and shows
// that after stabilisation every correct subsystem gets its slot and no
// two correct subsystems ever drive the bus simultaneously, no matter
// what the Byzantine subsystems do.
package main

import (
	"fmt"
	"log"

	"github.com/synchcount/synchcount"
)

const slots = 12

func main() {
	// A 12-node, 3-resilient counter counting modulo the slot count:
	// two recursion levels (A(4,1) inside A(12,3)).
	plan := synchcount.Plan{
		Levels: []synchcount.PlanLevel{{K: 4, F: 1}, {K: 3, F: 3}},
		C:      slots,
	}
	cnt, _, stats, err := synchcount.FromPlan(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bus arbiter: %d subsystems, %d Byzantine tolerated, %d TDMA slots\n",
		cnt.N(), cnt.F(), slots)
	fmt.Printf("guarantee  : collision-free within %d clock ticks of any glitch\n\n", stats.TimeBound)

	byzantine := []int{1, 6, 11}
	isByz := map[int]bool{1: true, 6: true, 11: true}
	cfg := synchcount.SimConfig{
		Alg:       cnt,
		Faulty:    byzantine,
		Adv:       synchcount.Saboteur(cnt), // construction-aware worst-case attack
		Seed:      3,
		MaxRounds: stats.TimeBound + 256,
		Window:    64,
	}

	// Pass 1: find the stabilisation tick for this (deterministic) run.
	res, err := synchcount.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Stabilised {
		log.Fatal("bus never stabilised — impossible within the fault budget")
	}
	fmt.Printf("power-on glitch injected; Byzantine subsystems %v attack the arbiter\n", byzantine)
	fmt.Printf("bus stabilised at tick %d\n\n", res.StabilisationTime)

	// Pass 2: replay the identical run and audit the bus after
	// stabilisation. Subsystem i drives the bus iff its counter reads
	// its own slot number i.
	collisions, silentRounds := 0, 0
	driversSeen := make(map[int]bool)
	cfg.OnRound = func(round uint64, _ []synchcount.State, outputs []int) {
		if round < res.StabilisationTime {
			return
		}
		var drivers []int
		for i, slot := range outputs {
			if !isByz[i] && slot == i {
				drivers = append(drivers, i)
			}
		}
		switch {
		case len(drivers) > 1:
			collisions++
		case len(drivers) == 0:
			silentRounds++ // the slot owner is Byzantine: bus idles, no harm
		default:
			driversSeen[drivers[0]] = true
		}
	}
	if _, err := synchcount.SimulateFull(cfg); err != nil {
		log.Fatal(err)
	}

	fmt.Println("after stabilisation:")
	fmt.Printf("  bus collisions among correct subsystems : %d\n", collisions)
	fmt.Printf("  rounds where the bus idled (Byzantine slot owner): %d\n", silentRounds)
	fmt.Printf("  correct subsystems that transmitted     : %d of %d\n",
		len(driversSeen), cnt.N()-len(byzantine))
	if collisions == 0 && len(driversSeen) == cnt.N()-len(byzantine) {
		fmt.Println("\nTDMA holds: every correct subsystem transmits, none ever collide.")
	}
}
