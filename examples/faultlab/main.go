// Faultlab: a tour of the Byzantine adversary suite. It runs the same
// 4-node, 1-resilient counter against every built-in attack strategy —
// plus the construction-aware saboteur from a crafted initial
// configuration — and reports the measured stabilisation times against
// the Theorem 1 bound, demonstrating that self-stabilisation holds
// uniformly while the *time* varies enormously with the attack.
package main

import (
	"fmt"
	"log"
	"sort"

	"github.com/synchcount/synchcount"
)

func main() {
	cnt, err := synchcount.OptimalResilience(1, 960)
	if err != nil {
		log.Fatal(err)
	}
	bound, _ := synchcount.StabilisationBound(cnt)
	fmt.Printf("counter A(4,1) mod %d — Theorem 1 bound: T <= %d rounds\n\n", cnt.C(), bound)
	fmt.Printf("%-12s %-12s %-14s %-10s\n", "adversary", "init", "measured T", "bound use")
	fmt.Printf("%-12s %-12s %-14s %-10s\n", "---------", "----", "----------", "---------")

	type row struct {
		name string
		init string
		t    uint64
	}
	var rows []row

	run := func(name, initKind string, adv synchcount.Adversary, init []synchcount.State) {
		st, err := synchcount.SimulateMany(synchcount.SimConfig{
			Alg:       cnt,
			Faulty:    []int{0}, // node 0 is king 0: the strongest fault position
			Adv:       adv,
			Init:      init,
			Seed:      11,
			MaxRounds: bound + 512,
			Window:    128,
		}, 5)
		if err != nil {
			log.Fatal(err)
		}
		if st.Stabilised < 5 {
			log.Fatalf("%s: only %d/5 runs stabilised — Theorem 1 violated", name, st.Stabilised)
		}
		rows = append(rows, row{name: name, init: initKind, t: st.MaxTime})
	}

	for _, name := range synchcount.Adversaries() {
		run(name, "random", synchcount.MustAdversary(name), nil)
	}
	worst, err := synchcount.WorstInit(cnt)
	if err != nil {
		log.Fatal(err)
	}
	run("saboteur", "crafted", synchcount.Saboteur(cnt), worst)

	sort.Slice(rows, func(i, j int) bool { return rows[i].t < rows[j].t })
	for _, r := range rows {
		fmt.Printf("%-12s %-12s %-14d %6.1f%%\n", r.name, r.init, r.t, 100*float64(r.t)/float64(bound))
	}
	fmt.Println("\nevery attack stabilises within the bound; only the construction-aware")
	fmt.Println("attack from a crafted start exercises the leader-window alignment term.")
}
