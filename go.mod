module github.com/synchcount/synchcount

go 1.22
