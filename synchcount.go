// Package synchcount is a library of self-stabilising Byzantine
// fault-tolerant synchronous counters, reproducing
//
//	Christoph Lenzen, Joel Rybicki, Jukka Suomela:
//	"Towards Optimal Synchronous Counting", PODC 2015
//	(arXiv:1503.06702).
//
// Problem. A fully connected network of n nodes receives a common clock
// pulse but no round numbers. Starting from arbitrary states and with up
// to f Byzantine nodes, all correct nodes must eventually agree on a
// counter and increment it modulo c every round — the synchronous
// c-counting problem, a self-stabilising analogue of consensus used to
// derive dependable round numbers in redundant circuits.
//
// The library provides:
//
//   - the paper's resilience-boosting construction (Theorem 1) and its
//     recursive applications: optimal-resilience counters (Corollary 1),
//     fixed block counts (Theorem 2) and varying block counts
//     (Theorem 3), all as deterministic algorithms with exact space
//     accounting and predicted stabilisation-time bounds;
//   - the randomised pulling-model counters of Section 5 (Theorem 4,
//     Corollaries 4–5) with per-node message accounting;
//   - randomised baseline algorithms from the literature summarised in
//     the paper's Table 1;
//   - a synchronous-network simulator with a Byzantine adversary suite
//     and online stabilisation detection;
//   - an exhaustive model checker and an algorithm synthesiser for small
//     instances, reproducing the "computer-designed algorithms" method
//     the paper builds upon.
//
// Quick start:
//
//	cnt, err := synchcount.OptimalResilience(1, 10) // A(4,1): 4 nodes, 1 fault, count mod 10
//	if err != nil { ... }
//	res, err := synchcount.Simulate(synchcount.SimConfig{
//		Alg:       cnt,
//		Faulty:    []int{2},
//		Adv:       synchcount.MustAdversary("splitvote"),
//		Seed:      1,
//		MaxRounds: cnt.StabilisationBound() + 100,
//	})
package synchcount

import (
	"context"
	"fmt"
	"io"

	"github.com/synchcount/synchcount/internal/adversary"
	"github.com/synchcount/synchcount/internal/alg"
	"github.com/synchcount/synchcount/internal/boost"
	"github.com/synchcount/synchcount/internal/counter"
	"github.com/synchcount/synchcount/internal/ecount"
	"github.com/synchcount/synchcount/internal/harness"
	"github.com/synchcount/synchcount/internal/pull"
	"github.com/synchcount/synchcount/internal/recursion"
	"github.com/synchcount/synchcount/internal/reduction"
	"github.com/synchcount/synchcount/internal/registry"
	"github.com/synchcount/synchcount/internal/sim"
	"github.com/synchcount/synchcount/internal/synth"
	"github.com/synchcount/synchcount/internal/verify"
)

// Core abstractions (see internal/alg for full documentation).
type (
	// Algorithm is the paper's (X, g, h) tuple: a synchronous c-counter
	// candidate on n nodes.
	Algorithm = alg.Algorithm
	// State is a node state, a value in [0, StateSpace()).
	State = alg.State
	// Adversary chooses the states Byzantine nodes present to each
	// receiver every round.
	Adversary = adversary.Adversary
	// AdversaryView is the omniscient per-round snapshot adversaries see.
	AdversaryView = adversary.View
	// BatchStepper is the vectorized transition hook: algorithms that
	// implement it step all correct nodes of a round in one call on the
	// simulator's round kernel, sharing vote tallies across receivers.
	// Every built-in construction implements it.
	BatchStepper = alg.BatchStepper
	// MessagePatches carries one round's per-receiver faulty-sender
	// values — the O(n·(f+1)) fan-out representation of a broadcast
	// round consumed by BatchStepper.
	MessagePatches = alg.Patches
	// RowMessenger is the adversary-side vectorization hook: strategies
	// that implement it deliver a receiver's whole faulty-sender row in
	// one call. All built-in strategies implement it.
	RowMessenger = adversary.RowMessenger
	// BitSliceStepper is the bit-sliced transition hook: algorithms
	// with narrow states (at most alg.MaxSliceBits planes) that
	// implement it step 64 correct nodes per machine word from the
	// transposed bit-planes. The binary-state baselines implement it.
	BitSliceStepper = alg.BitSliceStepper
	// BitPlanes is the transposed (vertical) working set of one
	// bit-sliced round: state planes, patch planes and the
	// correct-lane mask.
	BitPlanes = alg.BitPlanes
	// DenseTally is the slice-backed, removal-capable majority tally
	// the batch steppers share across receivers.
	DenseTally = alg.DenseTally
)

// NewDenseTally returns a DenseTally for values in [0, domain); see
// internal/alg for the sparse-fallback and Infinity conventions.
func NewDenseTally(domain uint64) *DenseTally { return alg.NewDenseTally(domain) }

// Simulation front-end (see internal/sim).
type (
	// SimConfig configures a broadcast-model simulation run.
	SimConfig = sim.Config
	// SimResult reports a broadcast-model run.
	SimResult = sim.Result
	// SimStats aggregates repeated runs.
	SimStats = sim.Stats
)

// Simulate runs one broadcast-model simulation with early stop on
// confirmed stabilisation.
func Simulate(cfg SimConfig) (SimResult, error) { return sim.Run(cfg) }

// SimulateFull runs for exactly MaxRounds (no early stop), counting any
// post-stabilisation violations.
func SimulateFull(cfg SimConfig) (SimResult, error) { return sim.RunFull(cfg) }

// SimulateMany aggregates stabilisation statistics across derived seeds.
// It runs sequentially for compatibility; use a Campaign for parallel
// trial execution and richer statistics.
func SimulateMany(cfg SimConfig, trials int) (SimStats, error) { return sim.RunMany(cfg, trials) }

// Campaign engine (see internal/harness): a grid of scenarios executed
// concurrently over a worker pool with deterministic per-trial seed
// derivation, context cancellation, streaming sinks, cross-process
// sharding and JSON/CSV/NDJSON export.
type (
	// Campaign is a grid of scenarios executed as one parallel batch.
	Campaign = harness.Campaign
	// Scenario is one cell of a campaign grid.
	Scenario = harness.Scenario
	// CampaignResult is a completed campaign with per-scenario results.
	CampaignResult = harness.Result
	// ScenarioResult is one scenario's aggregated outcome.
	ScenarioResult = harness.ScenarioResult
	// CampaignStats aggregates one scenario's trials, including
	// median/p95/p99 stabilisation times.
	CampaignStats = harness.Stats
	// CampaignTrial is a single trial record.
	CampaignTrial = harness.Trial
	// Observation is what one trial measures.
	Observation = harness.Observation
	// CampaignSink consumes per-trial records as a campaign streams;
	// the engine serialises emissions and delivers them in
	// deterministic order at any worker count.
	CampaignSink = harness.Sink
	// CampaignSinkFunc adapts a per-trial callback to a CampaignSink.
	CampaignSinkFunc = harness.SinkFunc
	// CampaignTrialRecord is the flat, self-describing streamed form of
	// one trial (NDJSON line / sink payload).
	CampaignTrialRecord = harness.TrialRecord
	// CampaignCollector is the buffering sink behind RunCampaign.
	CampaignCollector = harness.Collector
	// ShardSpec pins the slice of a campaign one shard executes; it
	// serialises to JSON losslessly for cross-process orchestration.
	ShardSpec = harness.ShardSpec
	// ShardSlice is one scenario's contiguous trial range in a shard.
	ShardSlice = harness.ShardSlice
)

// RunCampaign executes the campaign over its worker pool, buffering
// every trial into the result. Results are deterministic in (campaign
// definition, seed) at any worker count.
func RunCampaign(ctx context.Context, c Campaign) (*CampaignResult, error) { return c.Run(ctx) }

// StreamCampaign executes the campaign, delivering each completed trial
// to the sinks in deterministic order instead of buffering: campaigns
// with non-buffering sinks (NDJSON, callbacks) run in memory
// independent of the trial count and can be tailed live.
func StreamCampaign(ctx context.Context, c Campaign, sinks ...CampaignSink) error {
	return c.Stream(ctx, sinks...)
}

// ShardCampaign computes shard `index` of a `count`-way split of the
// campaign's trial grid. Each shard can run in its own process or on
// its own machine (RunCampaignShard); merging the shard results
// reproduces the unsharded campaign byte for byte, because trial seeds
// depend only on grid position.
func ShardCampaign(c Campaign, index, count int) (ShardSpec, error) { return c.Shard(index, count) }

// RunCampaignShard executes only the campaign slice pinned by spec.
func RunCampaignShard(ctx context.Context, c Campaign, spec ShardSpec) (*CampaignResult, error) {
	return c.RunShard(ctx, spec)
}

// MergeCampaignResults reassembles per-shard campaign results exactly:
// merging a complete shard split is byte-identical to the unsharded
// run, quantile statistics included. Partial merges are valid and can
// be merged again with the remaining shards.
func MergeCampaignResults(parts ...*CampaignResult) (*CampaignResult, error) {
	return harness.Merge(parts...)
}

// ReadCampaignResult reads a campaign result from a JSON file written
// by CampaignResult.WriteJSONFile — the shard hand-off format.
func ReadCampaignResult(path string) (*CampaignResult, error) { return harness.ReadJSONFile(path) }

// ReadCampaignNDJSON reassembles a campaign result from a stream of
// NDJSON trial records (CampaignResult.WriteNDJSON / CampaignNDJSONSink
// output). Concatenations of shard streams are valid input, so NDJSON
// is a first-class shard hand-off format alongside the buffered JSON.
func ReadCampaignNDJSON(r io.Reader) (*CampaignResult, error) { return harness.ReadNDJSON(r) }

// ReadCampaignNDJSONFile is ReadCampaignNDJSON over a file.
func ReadCampaignNDJSONFile(path string) (*CampaignResult, error) {
	return harness.ReadNDJSONFile(path)
}

// CampaignNDJSONSink returns a sink streaming one JSON line per trial
// to w, byte-identical to CampaignResult.WriteNDJSON of the same
// campaign.
func CampaignNDJSONSink(w io.Writer) CampaignSink { return harness.NDJSONSink(w) }

// ParseShardSpec decodes and validates a ShardSpec from its JSON
// interchange form.
func ParseShardSpec(data []byte) (ShardSpec, error) { return harness.ParseShardSpec(data) }

// Fast-forward engine (see internal/sim/fastforward.go): deterministic
// algorithms under snapshottable adversaries evolve the global
// configuration as a pure function, so the simulator detects the
// trajectory's cycle (hash-candidate, verified by full configuration
// comparison) and concludes the stabilisation window and verification
// tail analytically — bit-identical Results at a fraction of the
// rounds. Enabled by default for eligible SimConfigs; opt out with
// SimConfig.NoFastForward.
type (
	// SnapshottableAdversary marks stateless adversaries and declares
	// their round period; period >= 1 makes a deterministic run
	// eligible for fast-forwarding. All built-in strategies implement
	// it (random and equivocate declare period 0: stateless but
	// rng-driven); the greedy lookahead opts out.
	SnapshottableAdversary = adversary.Snapshottable
	// ConfigCapturer lets algorithms with hidden per-node state expose
	// it to configuration hashing; the built-in constructions need
	// nothing (their state vectors are explicit).
	ConfigCapturer = alg.ConfigCapturer
	// TrajectoryMemo is the bounded, concurrency-safe per-campaign
	// cache of confirmed trajectory cycles: trials whose trajectories
	// merge skip straight to the memoised conclusion.
	TrajectoryMemo = harness.TrajectoryMemo
	// TrajectoryKey keys one memoised trajectory fact.
	TrajectoryKey = harness.TrajectoryKey
)

// NewTrajectoryMemo returns a trajectory memo bounded to capacity
// entries (capacity <= 0 selects the default bound). Attach it to the
// SimConfigs of a campaign via SimConfig.Memo/MemoAlg to share cycle
// discoveries across trials.
func NewTrajectoryMemo(capacity int) *TrajectoryMemo { return harness.NewTrajectoryMemo(capacity) }

// SaveTrajectoryMemoFile persists a trajectory memo's confirmed cycles
// as a deterministic NDJSON file (atomic write), so repeat campaigns in
// later processes start warm.
func SaveTrajectoryMemoFile(path string, m *TrajectoryMemo) error {
	return sim.SaveTrajectoryMemoFile(path, m)
}

// LoadTrajectoryMemoFile loads a saved trajectory memo into m,
// returning the number of entries restored. Foreign, stale or tampered
// files are rejected loudly; a missing file satisfies os.IsNotExist.
func LoadTrajectoryMemoFile(path string, m *TrajectoryMemo) (int, error) {
	return sim.LoadTrajectoryMemoFile(path, m)
}

// AdversarySnapshotPeriod reports an adversary's snapshot period and
// whether fast-forwarding may cycle-detect under it.
func AdversarySnapshotPeriod(a Adversary) (uint64, bool) { return adversary.SnapshotPeriodOf(a) }

// HashConfiguration hashes a configuration word vector with the
// fast-forward engine's incremental configuration hash.
func HashConfiguration(words []State) uint64 { return alg.HashConfig(words) }

// SimScenario adapts a broadcast-model SimConfig to a campaign scenario
// of `trials` trials. The config is shared across concurrent trials and
// must therefore only reference read-only components (the greedy
// adversary is not; use SimScenarioFunc for it).
func SimScenario(name string, cfg SimConfig, trials int) Scenario {
	return sim.CampaignScenario(name, cfg, trials)
}

// SimScenarioFunc builds a campaign scenario whose SimConfig is
// constructed freshly per trial — required for per-run mutable state
// such as the greedy adversary or OnRound trace sinks.
func SimScenarioFunc(name string, trials int, build func(trial int) (SimConfig, error)) Scenario {
	return sim.CampaignScenarioFunc(name, trials, build, nil)
}

// PullScenario adapts a pulling-model PullConfig to a campaign scenario
// of `trials` trials.
func PullScenario(name string, cfg PullConfig, trials int) Scenario {
	return pull.CampaignScenario(name, cfg, trials)
}

// ErrSimAborted is returned by broadcast-model simulations stopped via
// SimConfig.Abort.
var ErrSimAborted = sim.ErrAborted

// ErrPullAborted is returned by pulling-model simulations stopped via
// PullConfig.Abort.
var ErrPullAborted = pull.ErrAborted

// Recursive construction plans (see internal/recursion).
type (
	// Plan is a stack of Theorem 1 applications over the trivial base.
	Plan = recursion.Plan
	// PlanLevel is one Theorem 1 application: K blocks, resilience F.
	PlanLevel = recursion.Level
	// PlanStats predicts N, F, stabilisation bound and state bits.
	PlanStats = recursion.Stats
	// Counter is a counter built by the boosting construction; it
	// implements Algorithm and exposes the construction's structure.
	Counter = boost.Counter
	// BoostParams are the free parameters of a single Theorem 1 step.
	BoostParams = boost.Params
)

// OptimalResilience builds the Corollary 1 counter: resilience f < n/3
// on n = 3f+1 nodes, counting modulo c, stabilising in f^O(f) rounds.
func OptimalResilience(f, c int) (*Counter, error) {
	p, err := recursion.Corollary1(f, c)
	if err != nil {
		return nil, err
	}
	top, _, _, err := recursion.Build(p)
	return top, err
}

// Scalable builds the Theorem 2 counter: `depth` recursion levels with a
// fixed block count k, yielding resilience Ω(n^(1-ε)) with linear-in-f
// stabilisation time and polylogarithmic state.
func Scalable(k, depth, c int) (*Counter, error) {
	p, err := recursion.FixedK(k, depth, c)
	if err != nil {
		return nil, err
	}
	top, _, _, err := recursion.Build(p)
	return top, err
}

// Figure2 builds the paper's Figure 2 demonstration stack:
// A(4,1) → A(12,3) → A(36,7), counting modulo c.
func Figure2(c int) (*Counter, error) {
	p, err := recursion.Figure2(c)
	if err != nil {
		return nil, err
	}
	top, _, _, err := recursion.Build(p)
	return top, err
}

// FromPlan builds an arbitrary recursion plan, returning the top-level
// counter, all intermediate levels, and the plan statistics.
func FromPlan(p Plan) (*Counter, []*Counter, PlanStats, error) { return recursion.Build(p) }

// Boost applies a single step of Theorem 1 to an existing base counter.
func Boost(base Algorithm, params BoostParams) (*Counter, error) { return boost.New(base, params) }

// PlanCorollary1 returns the Corollary 1 plan without building it.
func PlanCorollary1(f, c int) (Plan, error) { return recursion.Corollary1(f, c) }

// PlanFixedK returns the Theorem 2 plan (fixed block count).
func PlanFixedK(k, depth, c int) (Plan, error) { return recursion.FixedK(k, depth, c) }

// PlanVaryingK returns the Theorem 3 plan (block count halving across
// phases).
func PlanVaryingK(phases, c int) (Plan, error) { return recursion.VaryingK(phases, c) }

// PredictPlan computes a plan's parameters (N, F, time bound, state
// bits) without instantiating it.
func PredictPlan(p Plan) (PlanStats, error) { return recursion.PredictedStats(p) }

// Baseline algorithms (Table 1 rows; see internal/counter).

// TrivialCounter returns the 0-resilient single-node c-counter.
func TrivialCounter(c int) (Algorithm, error) { return counter.NewTrivial(c) }

// FaultFreeCounter returns the 0-resilient n-node c-counter that
// stabilises in one round.
func FaultFreeCounter(n, c int) (Algorithm, error) { return counter.NewMaxStep(n, c) }

// RandomizedAgree returns the folklore randomised 2-counter of Table 1
// rows [6,7]: one state bit, expected stabilisation 2^Θ(n-f).
func RandomizedAgree(n, f int) (Algorithm, error) { return counter.NewRandomizedAgree(n, f) }

// RandomizedBiased returns the threshold-biased randomised 2-counter in
// the spirit of Table 1 row [5].
func RandomizedBiased(n, f int) (Algorithm, error) { return counter.NewRandomizedBiased(n, f) }

// Follow-up constructions (arXiv:1508.02535; see internal/ecount) and
// the algorithm registry (see internal/registry).
type (
	// ECountCounter is a silent-consensus counter of the follow-up
	// paper "Efficient Counting with Optimal Resilience".
	ECountCounter = ecount.Counter
	// SilentConsensus is the once-consensus building block the ecount
	// counters are derived from.
	SilentConsensus = ecount.Consensus
	// RegistryParams is the uniform (n, f, c) parameterisation of the
	// algorithm registry; zero fields take per-algorithm defaults.
	RegistryParams = registry.Params
	// RegistrySpec describes one registered algorithm family.
	RegistrySpec = registry.Spec
	// CompareSpec describes a head-to-head campaign between registered
	// algorithms over a shared (f, adversary, seed) grid.
	CompareSpec = registry.CompareSpec
	// CompareCell is the static per-build metadata of a compare column.
	CompareCell = registry.CompareCell
)

// ECount builds the follow-up paper's balanced-recursion counter:
// resilience f < n/3 with an O(f) stabilisation bound and
// polylogarithmic-style state growth.
func ECount(n, f, c int) (*ECountCounter, error) { return ecount.New(n, f, c) }

// ECountChain builds the chain-recursion variant: same resilience,
// depth-f recursion with an O(f^2) stabilisation bound.
func ECountChain(n, f, c int) (*ECountCounter, error) { return ecount.NewChain(n, f, c) }

// NewSilentConsensus returns the silent once-consensus building block
// for n nodes tolerating f < n/3 faults, agreeing modulo mod.
func NewSilentConsensus(n, f int, mod uint64) (*SilentConsensus, error) {
	return ecount.NewConsensus(n, f, mod)
}

// RegisteredAlgorithms lists the algorithm registry names in
// presentation order.
func RegisteredAlgorithms() []string { return registry.Names() }

// BuildRegistered constructs a registered algorithm by name from the
// uniform parameterisation — the registry's common constructor.
func BuildRegistered(name string, p RegistryParams) (Algorithm, error) {
	return registry.Build(name, p)
}

// Adversaries.

// Adversaries lists the built-in Byzantine strategy names.
func Adversaries() []string { return adversary.Names() }

// AdversaryByName looks up a built-in Byzantine strategy.
func AdversaryByName(name string) (Adversary, error) { return adversary.ByName(name) }

// MustAdversary is AdversaryByName for statically known names; it panics
// on unknown names and is intended for examples and tests.
func MustAdversary(name string) Adversary {
	a, err := adversary.ByName(name)
	if err != nil {
		panic(err)
	}
	return a
}

// Saboteur returns the construction-aware adversary that tips leader
// votes and splits phase king quorums of the given counter — the
// strongest attack in the suite for measuring worst-case-ish
// stabilisation times.
func Saboteur(c *Counter) Adversary { return boost.Saboteur{C: c} }

// WorstInit returns an adversarially staggered initial configuration for
// the counter (leader pointers split across blocks, round counters
// offset, phase king registers disagreeing).
func WorstInit(c *Counter) ([]State, error) { return c.WorstInit() }

// Greedy wraps an adversary with one-step-lookahead optimisation: each
// round it simulates candidate Byzantine assignments against the (must
// be deterministic) algorithm and commits to the one maximising
// disagreement. Used for bound-tightness measurements.
func Greedy(a Algorithm, inner Adversary, samples int) (Adversary, error) {
	return adversary.NewGreedy(a, inner, samples)
}

// Pulling model (Section 5; see internal/pull).
type (
	// PullAlgorithm is a counting algorithm in the pulling model.
	PullAlgorithm = pull.Algorithm
	// PullConfig configures a pulling-model run.
	PullConfig = pull.Config
	// PullResult reports a pulling-model run, including per-node message
	// complexity.
	PullResult = pull.Result
	// SampledCounter is the randomised counter of Theorem 4 /
	// Corollary 5.
	SampledCounter = pull.SampledCounter
	// Gossip is the fixed-wiring k-sample plurality counter behind the
	// large-n sparse pulling-model cells.
	Gossip = pull.Gossip
	// PullSampler is the stateless fixed-wiring neighbour sampler.
	PullSampler = pull.Sampler
	// PullBatchStepper is the sparse batch fast path of the pulling
	// model; Run dispatches to it automatically.
	PullBatchStepper = pull.BatchStepper
)

// Sampled wraps a boosted counter with the sampled communication of
// Theorem 4: M samples per vote, thresholds 2/3·M and 1/3·M. With
// pseudo set, sampling wires are fixed once (Corollary 5).
func Sampled(c *Counter, m int, pseudo bool, wireSeed int64) (*SampledCounter, error) {
	return pull.NewSampled(c, m, pseudo, wireSeed)
}

// PullBroadcast embeds a broadcast-model algorithm in the pulling model
// (each node pulls all n-1 peers).
func PullBroadcast(a Algorithm) PullAlgorithm { return pull.Broadcast{A: a} }

// NewGossip builds the fixed-wiring k-sample plurality c-counter on n
// nodes: the million-node workload of the sparse pull kernel. f is the
// fault budget recorded for reporting; wireSeed fixes the sampling
// wiring (the Corollary 5 pattern).
func NewGossip(n, f, c, k int, wireSeed int64) (*Gossip, error) {
	return pull.NewGossip(n, f, c, k, wireSeed)
}

// SimulatePull runs one pulling-model simulation with early stop.
func SimulatePull(cfg PullConfig) (PullResult, error) { return pull.Run(cfg) }

// SimulatePullFull runs a pulling-model simulation for exactly
// MaxRounds.
func SimulatePullFull(cfg PullConfig) (PullResult, error) { return pull.RunFull(cfg) }

// Consensus from counting (see internal/reduction): the paper's intro
// notes that counting and binary consensus are interconvertible; this is
// the counting → consensus direction.
type (
	// ConsensusMachine is a self-stabilising repeated-consensus service
	// scheduled by a counter: after the counter stabilises, every epoch
	// of 3(f+2) rounds decides one value with agreement and validity.
	ConsensusMachine = reduction.Machine
	// ConsensusInput supplies each node's input per epoch.
	ConsensusInput = reduction.InputFunc
)

// NoDecision is reported for nodes that have not completed a consensus
// epoch.
const NoDecision = reduction.NoDecision

// RepeatedConsensus layers a phase-king consensus service over a
// counting algorithm. The counter's modulus must be a multiple of
// 3(f+2); vals is the input domain size.
func RepeatedConsensus(clock Algorithm, vals int, inputs ConsensusInput) (*ConsensusMachine, error) {
	return reduction.New(clock, vals, inputs)
}

// Verification and synthesis (see internal/verify, internal/synth).
type (
	// VerifyOptions bound the exhaustive model checker.
	VerifyOptions = verify.Options
	// VerifyResult reports exact worst-case stabilisation time or a
	// counterexample execution.
	VerifyResult = verify.Result
	// SynthOptions tune the synthesiser's exhaustive search.
	SynthOptions = synth.Options
	// SynthFound is one synthesised and verified counter.
	SynthFound = synth.Found
)

// Verify exhaustively model-checks a small deterministic algorithm
// against every fault set, initial configuration and Byzantine strategy.
func Verify(a Algorithm, opts VerifyOptions) (VerifyResult, error) { return verify.Check(a, opts) }

// PersistenceResult reports VerifyPersistence's outcome.
type PersistenceResult = verify.PersistenceResult

// VerifyPersistence exhaustively checks the Lemma 5 analogue for any
// algorithm — randomised ones included: once all correct nodes agree,
// no Byzantine input (and no coin) can keep the outputs from advancing
// in lockstep. This is the property that makes stabilisation permanent.
func VerifyPersistence(a Algorithm, opts VerifyOptions) (PersistenceResult, error) {
	return verify.CheckPersistence(a, opts)
}

// Synthesise searches the anonymous single-bit algorithm class for
// correct 2-counters on n nodes with resilience f, re-running the
// "computational algorithm design" method behind the paper's Table 1.
func Synthesise(n, f int, opts SynthOptions) ([]SynthFound, error) { return synth.Search(n, f, opts) }

// StateBits returns the paper's space complexity S(A) = ⌈log₂|X|⌉.
func StateBits(a Algorithm) int { return alg.StateBits(a) }

// IsDeterministic reports whether the algorithm declares itself
// deterministic.
func IsDeterministic(a Algorithm) bool { return alg.IsDeterministic(a) }

// StabilisationBound returns the predicted stabilisation-time bound for
// algorithms that expose one (all deterministic constructions in this
// library), or an error otherwise.
func StabilisationBound(a Algorithm) (uint64, error) {
	b, ok := a.(alg.Bound)
	if !ok {
		return 0, fmt.Errorf("synchcount: %T does not expose a stabilisation bound", a)
	}
	return b.StabilisationBound(), nil
}
