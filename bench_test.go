// Benchmark harness regenerating every table and figure of the paper
// (see DESIGN.md §4 for the experiment index):
//
//	BenchmarkSection1_*  — the worked execution of Section 1 (E1)
//	BenchmarkTable1_*    — the algorithm landscape of Table 1 (E2)
//	BenchmarkFigure1_*   — leader-window alignment, Figure 1 (E3)
//	BenchmarkFigure2_*   — the recursive 36-node stack, Figure 2 (E4)
//	BenchmarkTheorem1_*  — bound-tightness ablations (E5)
//	BenchmarkScaling_*   — Theorem 2/3 scaling series (E6)
//	BenchmarkPulling_*   — Section 5 message complexity (E7, E8)
//
// Custom metrics: "rounds" is the measured stabilisation time,
// "bound_rounds" the Theorem 1 analytical bound, "state_bits" the exact
// space complexity, "pulls/round" the pulling-model per-node message
// complexity, and "violations" the post-stabilisation failure count.
package synchcount_test

import (
	"context"
	"fmt"
	"testing"

	"github.com/synchcount/synchcount"
)

// simOnce runs one simulation per iteration and reports the mean
// stabilisation time as the "rounds" metric, plus any static metrics
// supplied by the caller (reported after the loop: the testing harness
// clears metrics recorded before the final run).
func simOnce(b *testing.B, cfg synchcount.SimConfig, extra map[string]float64) {
	b.Helper()
	var total uint64
	var runs int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		res, err := synchcount.Simulate(c)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Stabilised {
			b.Fatalf("iteration %d did not stabilise within %d rounds", i, c.MaxRounds)
		}
		total += res.StabilisationTime
		runs++
	}
	b.ReportMetric(float64(total)/float64(runs), "rounds")
	for unit, v := range extra {
		b.ReportMetric(v, unit)
	}
}

// --- E1: the Section 1 worked example -------------------------------

func BenchmarkSection1_Example_N4F1C3(b *testing.B) {
	cnt, err := synchcount.OptimalResilience(1, 3)
	if err != nil {
		b.Fatal(err)
	}
	bound, _ := synchcount.StabilisationBound(cnt)
	simOnce(b, synchcount.SimConfig{
		Alg:       cnt,
		Faulty:    []int{2},
		Adv:       synchcount.MustAdversary("equivocate"),
		Seed:      7,
		MaxRounds: bound + 256,
		Window:    64,
	}, map[string]float64{
		"bound_rounds": float64(bound),
		"state_bits":   float64(synchcount.StateBits(cnt)),
	})
}

// --- E2: Table 1 rows ------------------------------------------------

func BenchmarkTable1_Randomized67_N4F1(b *testing.B) {
	alg, err := synchcount.RandomizedAgree(4, 1)
	if err != nil {
		b.Fatal(err)
	}
	simOnce(b, synchcount.SimConfig{
		Alg:       alg,
		Faulty:    []int{1},
		Adv:       synchcount.MustAdversary("splitvote"),
		Seed:      11,
		MaxRounds: 1 << 22,
	}, map[string]float64{"state_bits": float64(synchcount.StateBits(alg))})
}

func BenchmarkTable1_Randomized67_N7F2(b *testing.B) {
	alg, err := synchcount.RandomizedAgree(7, 2)
	if err != nil {
		b.Fatal(err)
	}
	simOnce(b, synchcount.SimConfig{
		Alg:       alg,
		Faulty:    []int{1, 4},
		Adv:       synchcount.MustAdversary("splitvote"),
		Seed:      1,
		MaxRounds: 1 << 22,
	}, map[string]float64{"state_bits": float64(synchcount.StateBits(alg))})
}

func BenchmarkTable1_RandomizedBiased5_N7F2(b *testing.B) {
	alg, err := synchcount.RandomizedBiased(7, 2)
	if err != nil {
		b.Fatal(err)
	}
	simOnce(b, synchcount.SimConfig{
		Alg:       alg,
		Faulty:    []int{1, 4},
		Adv:       synchcount.MustAdversary("splitvote"),
		Seed:      1,
		MaxRounds: 1 << 22,
	}, map[string]float64{"state_bits": float64(synchcount.StateBits(alg))})
}

func BenchmarkTable1_Corollary1_N4F1(b *testing.B) {
	cnt, err := synchcount.OptimalResilience(1, 2)
	if err != nil {
		b.Fatal(err)
	}
	bound, _ := synchcount.StabilisationBound(cnt)
	init, err := synchcount.WorstInit(cnt)
	if err != nil {
		b.Fatal(err)
	}
	simOnce(b, synchcount.SimConfig{
		Alg:       cnt,
		Faulty:    []int{0},
		Adv:       synchcount.Saboteur(cnt),
		Init:      init,
		Seed:      2,
		MaxRounds: bound + 512,
		Window:    128,
	}, map[string]float64{
		"bound_rounds": float64(bound),
		"state_bits":   float64(synchcount.StateBits(cnt)),
	})
}

func BenchmarkTable1_ThisWork_N12F3(b *testing.B) {
	plan := synchcount.Plan{Levels: []synchcount.PlanLevel{{K: 4, F: 1}, {K: 3, F: 3}}, C: 2}
	cnt, _, stats, err := synchcount.FromPlan(plan)
	if err != nil {
		b.Fatal(err)
	}
	init, err := synchcount.WorstInit(cnt)
	if err != nil {
		b.Fatal(err)
	}
	simOnce(b, synchcount.SimConfig{
		Alg:       cnt,
		Faulty:    []int{0, 1, 2}, // break leader-candidate block 0 of the top level
		Adv:       synchcount.Saboteur(cnt),
		Init:      init,
		Seed:      2,
		MaxRounds: stats.TimeBound + 1024,
		Window:    128,
	}, map[string]float64{
		"bound_rounds": float64(stats.TimeBound),
		"state_bits":   float64(stats.StateBits),
	})
}

func BenchmarkTable1_ThisWork_N36F7(b *testing.B) {
	cnt, err := synchcount.Figure2(2)
	if err != nil {
		b.Fatal(err)
	}
	bound, _ := synchcount.StabilisationBound(cnt)
	init, err := synchcount.WorstInit(cnt)
	if err != nil {
		b.Fatal(err)
	}
	simOnce(b, synchcount.SimConfig{
		Alg:       cnt,
		Faulty:    []int{4, 5, 6, 7, 13, 22, 31},
		Adv:       synchcount.Saboteur(cnt),
		Init:      init,
		Seed:      2,
		MaxRounds: bound + 1024,
		Window:    128,
	}, map[string]float64{
		"bound_rounds": float64(bound),
		"state_bits":   float64(synchcount.StateBits(cnt)),
	})
}

// --- E3: Figure 1 ----------------------------------------------------

// BenchmarkFigure1_LeaderWindows measures the Lemma 2 mechanism: the
// fraction of rounds in which all blocks of a k=5 (2m=6) construction
// point at a common leader, from an adversarially staggered start.
func BenchmarkFigure1_LeaderWindows(b *testing.B) {
	base, err := synchcount.TrivialCounter(9 * 7776)
	if err != nil {
		b.Fatal(err)
	}
	cnt, err := synchcount.Boost(base, synchcount.BoostParams{K: 5, F: 1, C: 6})
	if err != nil {
		b.Fatal(err)
	}
	init, err := synchcount.WorstInit(cnt)
	if err != nil {
		b.Fatal(err)
	}
	const horizon = 4000
	var common, windows float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		commonRounds := 0
		inWindow := false
		windowCount := 0
		_, err := synchcount.SimulateFull(synchcount.SimConfig{
			Alg:       cnt,
			Init:      init,
			Seed:      1,
			MaxRounds: horizon,
			OnRound: func(_ uint64, states []synchcount.State, _ []int) {
				_, _, first := cnt.Leader(0, states[0])
				same := true
				for u := 1; u < cnt.N(); u++ {
					if _, _, p := cnt.Leader(u, states[u]); p != first {
						same = false
						break
					}
				}
				if same {
					commonRounds++
					if !inWindow {
						windowCount++
					}
				}
				inWindow = same
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		common = float64(commonRounds) / horizon
		windows = float64(windowCount)
	}
	b.ReportMetric(common, "common_leader_fraction")
	b.ReportMetric(windows, "alignment_windows")
	if common == 0 {
		b.Fatal("no common-leader windows observed — Lemma 2 mechanism broken")
	}
}

// --- E4: Figure 2 ----------------------------------------------------

func BenchmarkFigure2_Recursive36(b *testing.B) {
	cnt, err := synchcount.Figure2(10)
	if err != nil {
		b.Fatal(err)
	}
	bound, _ := synchcount.StabilisationBound(cnt)
	init, err := synchcount.WorstInit(cnt)
	if err != nil {
		b.Fatal(err)
	}
	simOnce(b, synchcount.SimConfig{
		Alg:       cnt,
		Faulty:    []int{4, 5, 6, 7, 13, 22, 31},
		Adv:       synchcount.Saboteur(cnt),
		Init:      init,
		Seed:      1,
		MaxRounds: bound + 1024,
		Window:    128,
	}, map[string]float64{
		"bound_rounds": float64(bound),
		"state_bits":   float64(synchcount.StateBits(cnt)),
	})
}

// --- E5: Theorem 1 bound-tightness ablations -------------------------

// BenchmarkTheorem1_BlockCount measures how the worst-observed
// stabilisation time scales with the number of blocks k: the Theorem 1
// overhead is 3(F+2)(2m)^k, and the honest-block alignment term that a
// swing-block attack exercises is Θ(τ(2m)^{k-1}).
func BenchmarkTheorem1_BlockCount(b *testing.B) {
	for _, k := range []int{4, 5, 6} {
		k := k
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			m := (k + 1) / 2
			overhead := uint64(9)
			for i := 0; i < k; i++ {
				overhead *= uint64(2 * m)
			}
			base, err := synchcount.TrivialCounter(int(overhead))
			if err != nil {
				b.Fatal(err)
			}
			cnt, err := synchcount.Boost(base, synchcount.BoostParams{K: k, F: 1, C: 8})
			if err != nil {
				b.Fatal(err)
			}
			init, err := synchcount.WorstInit(cnt)
			if err != nil {
				b.Fatal(err)
			}
			bound, _ := synchcount.StabilisationBound(cnt)
			simOnce(b, synchcount.SimConfig{
				Alg:       cnt,
				Faulty:    []int{0},
				Adv:       synchcount.Saboteur(cnt),
				Init:      init,
				Seed:      2,
				MaxRounds: bound + 1024,
				Window:    128,
			}, map[string]float64{"bound_rounds": float64(bound)})
		})
	}
}

// BenchmarkTheorem1_Adversaries compares attack strategies on the same
// construction: generic attacks stabilise almost immediately; only the
// construction-aware attack exercises the alignment term.
func BenchmarkTheorem1_Adversaries(b *testing.B) {
	cnt, err := synchcount.OptimalResilience(1, 960)
	if err != nil {
		b.Fatal(err)
	}
	bound, _ := synchcount.StabilisationBound(cnt)
	init, err := synchcount.WorstInit(cnt)
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range append(synchcount.Adversaries(), "saboteur") {
		name := name
		b.Run(name, func(b *testing.B) {
			var adv synchcount.Adversary
			if name == "saboteur" {
				adv = synchcount.Saboteur(cnt)
			} else {
				adv = synchcount.MustAdversary(name)
			}
			simOnce(b, synchcount.SimConfig{
				Alg:       cnt,
				Faulty:    []int{0},
				Adv:       adv,
				Init:      init,
				Seed:      3,
				MaxRounds: bound + 512,
				Window:    128,
			}, map[string]float64{"bound_rounds": float64(bound)})
		})
	}
}

// BenchmarkTheorem1_CounterSize verifies that the output modulus C only
// affects state size (S(B) = S(A) + ceil(log(C+1)) + 1), not
// stabilisation time.
func BenchmarkTheorem1_CounterSize(b *testing.B) {
	for _, c := range []int{2, 60, 960} {
		c := c
		b.Run(fmt.Sprintf("C=%d", c), func(b *testing.B) {
			cnt, err := synchcount.OptimalResilience(1, c)
			if err != nil {
				b.Fatal(err)
			}
			bound, _ := synchcount.StabilisationBound(cnt)
			init, err := synchcount.WorstInit(cnt)
			if err != nil {
				b.Fatal(err)
			}
			simOnce(b, synchcount.SimConfig{
				Alg:       cnt,
				Faulty:    []int{0},
				Adv:       synchcount.Saboteur(cnt),
				Init:      init,
				Seed:      4,
				MaxRounds: bound + 512,
				Window:    64,
			}, map[string]float64{"state_bits": float64(synchcount.StateBits(cnt))})
		})
	}
}

// --- E6: scaling series ----------------------------------------------

// BenchmarkScaling_FixedK reports the predicted resilience, time and
// space of the Theorem 2 construction across recursion depths: the
// bound/F ratio flattens (T = O(f)) while bits grow ~log² f.
func BenchmarkScaling_FixedK(b *testing.B) {
	for depth := 1; depth <= 6; depth++ {
		depth := depth
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			var st synchcount.PlanStats
			for i := 0; i < b.N; i++ {
				p, err := synchcount.PlanFixedK(4, depth, 2)
				if err != nil {
					b.Fatal(err)
				}
				st, err = synchcount.PredictPlan(p)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.N), "N")
			b.ReportMetric(float64(st.F), "F")
			b.ReportMetric(float64(st.TimeBound), "bound_rounds")
			b.ReportMetric(float64(st.TimeBound)/float64(st.F), "bound_per_f")
			b.ReportMetric(float64(st.StateBits), "state_bits")
		})
	}
}

// BenchmarkScaling_VaryingK reports the Theorem 3 schedule for one
// phase — the largest instance representable in 64 bits (two phases
// already exceed 2^63 nodes, which PlanVaryingK reports as an error;
// the paper's regime is asymptotic by design).
func BenchmarkScaling_VaryingK(b *testing.B) {
	b.Run("P=1", func(b *testing.B) {
		var st synchcount.PlanStats
		for i := 0; i < b.N; i++ {
			p, err := synchcount.PlanVaryingK(1, 2)
			if err != nil {
				b.Fatal(err)
			}
			st, err = synchcount.PredictPlan(p)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(st.N), "N")
		b.ReportMetric(float64(st.F), "F")
		b.ReportMetric(float64(st.StateBits), "state_bits")
	})
	b.Run("P=2_envelope", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := synchcount.PlanVaryingK(2, 2); err == nil {
				b.Fatal("P=2 should exceed the 64-bit envelope")
			}
		}
	})
}

// --- E7/E8: pulling model --------------------------------------------

func pullOnce(b *testing.B, alg synchcount.PullAlgorithm, horizon uint64) {
	b.Helper()
	var pulls, violations float64
	stabilised := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := synchcount.SimulatePullFull(synchcount.PullConfig{
			Alg:       alg,
			Faulty:    []int{4, 10},
			Adv:       synchcount.MustAdversary("equivocate"),
			Seed:      21 + int64(i),
			MaxRounds: horizon,
			Window:    96,
		})
		if err != nil {
			b.Fatal(err)
		}
		pulls = float64(res.MaxPulls)
		violations += float64(res.Violations)
		if res.Stabilised {
			stabilised++
		}
	}
	b.ReportMetric(pulls, "pulls/round")
	b.ReportMetric(violations/float64(b.N), "violations")
	b.ReportMetric(float64(stabilised)/float64(b.N), "stabilised_frac")
}

func pullStack(b *testing.B) (*synchcount.Counter, uint64) {
	b.Helper()
	plan := synchcount.Plan{Levels: []synchcount.PlanLevel{{K: 4, F: 1}, {K: 3, F: 3}}, C: 8}
	cnt, _, stats, err := synchcount.FromPlan(plan)
	if err != nil {
		b.Fatal(err)
	}
	return cnt, stats.TimeBound + 1500
}

func BenchmarkPulling_BroadcastReference(b *testing.B) {
	cnt, horizon := pullStack(b)
	pullOnce(b, synchcount.PullBroadcast(cnt), horizon)
}

func BenchmarkPulling_Sampled(b *testing.B) {
	cnt, horizon := pullStack(b)
	for _, m := range []int{12, 24, 48} {
		m := m
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			s, err := synchcount.Sampled(cnt, m, false, 1)
			if err != nil {
				b.Fatal(err)
			}
			pullOnce(b, s, horizon)
		})
	}
}

func BenchmarkPulling_PseudoRandom(b *testing.B) {
	cnt, horizon := pullStack(b)
	s, err := synchcount.Sampled(cnt, 24, true, 99)
	if err != nil {
		b.Fatal(err)
	}
	pullOnce(b, s, horizon)
}

// --- campaign harness throughput ---------------------------------------

// harnessCampaign builds a fixed-size campaign of equal-cost
// deterministic trials: the A(12,3) stack under the saboteur from the
// worst-case initial configuration, run for a fixed horizon so every
// trial performs identical work. Used to measure the parallel engine's
// throughput against the sequential baseline.
func harnessCampaign(b *testing.B, workers int) synchcount.Campaign {
	b.Helper()
	plan := synchcount.Plan{Levels: []synchcount.PlanLevel{{K: 4, F: 1}, {K: 3, F: 3}}, C: 8}
	cnt, _, _, err := synchcount.FromPlan(plan)
	if err != nil {
		b.Fatal(err)
	}
	init, err := synchcount.WorstInit(cnt)
	if err != nil {
		b.Fatal(err)
	}
	cfg := synchcount.SimConfig{
		Alg:       cnt,
		Faulty:    []int{0, 1, 2},
		Adv:       synchcount.Saboteur(cnt),
		Init:      init,
		Seed:      2,
		MaxRounds: 1500,
		Window:    128,
		StopEarly: false, // fixed horizon: every trial costs the same
	}
	return synchcount.Campaign{
		Name:    "bench",
		Seed:    2,
		Workers: workers,
		Scenarios: []synchcount.Scenario{
			synchcount.SimScenario("A(12,3)-saboteur", cfg, 8),
		},
	}
}

func runHarnessBench(b *testing.B, workers int) {
	b.Helper()
	campaign := harnessCampaign(b, workers)
	var trials int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := synchcount.RunCampaign(context.Background(), campaign)
		if err != nil {
			b.Fatal(err)
		}
		st := res.Scenarios[0].Stats
		if st.Stabilised != st.Trials {
			b.Fatalf("only %d/%d trials stabilised", st.Stabilised, st.Trials)
		}
		trials = st.Trials
	}
	b.ReportMetric(float64(trials), "trials/op")
}

// BenchmarkHarness_Sequential is the single-worker baseline: the
// campaign engine degenerates to the historical sequential trial loop.
func BenchmarkHarness_Sequential(b *testing.B) { runHarnessBench(b, 1) }

// BenchmarkHarness_Parallel runs the identical campaign over a
// GOMAXPROCS-sized worker pool. Results are byte-identical to the
// sequential run; on a 4-core runner throughput is expected to be >= 2x
// the sequential baseline (ns/op correspondingly lower).
func BenchmarkHarness_Parallel(b *testing.B) { runHarnessBench(b, 0) }

// --- engineering microbenchmarks ---------------------------------------

// BenchmarkStep measures the per-node per-round transition cost of the
// deterministic constructions — the quantity a circuit implementation
// would care about.
func BenchmarkStep(b *testing.B) {
	builds := []struct {
		name  string
		build func() (*synchcount.Counter, error)
	}{
		{"A(4,1)", func() (*synchcount.Counter, error) { return synchcount.OptimalResilience(1, 8) }},
		{"A(12,3)", func() (*synchcount.Counter, error) {
			cnt, _, _, err := synchcount.FromPlan(synchcount.Plan{
				Levels: []synchcount.PlanLevel{{K: 4, F: 1}, {K: 3, F: 3}}, C: 8,
			})
			return cnt, err
		}},
		{"A(36,7)", func() (*synchcount.Counter, error) { return synchcount.Figure2(8) }},
	}
	for _, tc := range builds {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			cnt, err := tc.build()
			if err != nil {
				b.Fatal(err)
			}
			init, err := synchcount.WorstInit(cnt)
			if err != nil {
				b.Fatal(err)
			}
			recv := make([]synchcount.State, cnt.N())
			copy(recv, init)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				recv[0] = cnt.Step(i%cnt.N(), recv, nil)
			}
		})
	}
}

// BenchmarkVerify measures exhaustive model checking throughput.
func BenchmarkVerify(b *testing.B) {
	m, err := synchcount.FaultFreeCounter(4, 6)
	if err != nil {
		b.Fatal(err)
	}
	var configs float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := synchcount.Verify(m, synchcount.VerifyOptions{})
		if err != nil || !res.OK {
			b.Fatalf("verify: %v ok=%v", err, res.OK)
		}
		configs = float64(res.ConfigsExplored)
	}
	b.ReportMetric(configs, "configs")
}

// BenchmarkSynthesis measures the exhaustive search rate used by E10.
func BenchmarkSynthesis(b *testing.B) {
	var found float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := synchcount.Synthesise(4, 1, synchcount.SynthOptions{})
		if err != nil {
			b.Fatal(err)
		}
		found = float64(len(res))
	}
	b.ReportMetric(found, "solutions")
}
